//! The per-ISP discrete-event simulation engine.
//!
//! One [`IspSim`] run simulates every configured subscriber of one ISP over
//! a time window, driving the mechanisms of Section 2.2 of the paper:
//!
//! * periodic renumbering (DHCP lease / RADIUS SessionTimeout expiry),
//! * CPE reboots and long subscriber outages,
//! * region-wide infrastructure outages that lose server state,
//! * administrative renumbering that moves subscribers across pools,
//! * CGNAT rebinds and cellular attachment sessions,
//! * CPE-side /64 selection (zero-out, scramble, rotate).
//!
//! Region-wide event rates (infrastructure outages, administrative
//! renumbering) are read from the first subscriber class, since they are
//! properties of the ISP rather than of a subscriber.
//!
//! The output is one ground-truth [`SubscriberTimeline`] per subscriber.

use crate::alloc::IndexAllocator;
use crate::config::{CpeV6Behavior, IspConfig, V4Policy, V6Policy};
use crate::dhcp::{DelegationState, LeaseState};
use crate::event::EventQueue;
use crate::plan::{sample_plan, SubscriberPlan};
use crate::rngutil::{derive_rng, exp_hours, heavy_tail_hours, jitter_period, weighted_index};
use crate::time::{SimTime, Window};
use crate::timeline::{SubscriberId, SubscriberTimeline, V4Segment, V6Segment};
use dynamips_netaddr::{Ipv4Pool, Ipv6Prefix, Ipv6PrefixPool};
use rand::rngs::SmallRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Why a subscriber is currently offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutageKind {
    /// Short CPE reboot / power blip.
    Short,
    /// Long outage (vacation, extended failure).
    Long,
    /// ISP infrastructure outage: server state is lost.
    Infra,
}

/// Simulation events. Generation counters invalidate stale timers after
/// outage- or admin-driven rescheduling.
#[derive(Debug, Clone, Copy)]
enum Ev {
    V4SessionEnd {
        sub: u32,
        gen: u32,
    },
    V6RenumberDue {
        sub: u32,
        gen: u32,
    },
    Lan64Rotate {
        sub: u32,
        gen: u32,
    },
    OutageStart {
        sub: u32,
        long: bool,
    },
    OutageEnd {
        sub: u32,
    },
    InfraOutage {
        group: u32,
    },
    AdminRenumber {
        group: u32,
    },
    /// Policy evolution: the subscriber's line is migrated to another
    /// subscriber class (see `config::Stabilization`).
    Stabilize {
        sub: u32,
        to_class: usize,
    },
}

/// State of one IPv4 pool.
struct V4PoolState {
    pool: Ipv4Pool,
    weight: f64,
    alloc: IndexAllocator,
}

/// State of one IPv6 regional delegation pool.
struct RegionState {
    pool: Ipv6PrefixPool,
    alloc: IndexAllocator,
    /// Which configured aggregate (BGP announcement) this region sits in.
    aggregate: usize,
}

/// Per-subscriber simulation state.
struct SubState {
    plan: SubscriberPlan,
    group: u32,
    /// Current v6 region index.
    region: usize,
    /// Exclusive v4 hold: (pool idx, allocator index). None for CGNAT.
    v4_hold: Option<(usize, u64)>,
    /// Open v4 segment: (start, addr, cgnat).
    v4_open: Option<(SimTime, Ipv4Addr, bool)>,
    /// Exclusive v6 hold: (region idx, allocator index).
    v6_hold: Option<(usize, u64)>,
    /// Open v6 segment: (start, delegated, lan64).
    v6_open: Option<(SimTime, Ipv6Prefix, Ipv6Prefix)>,
    offline: Option<OutageKind>,
    outage_started: SimTime,
    v4_gen: u32,
    v6_gen: u32,
    rot_gen: u32,
    /// Constant non-zero LAN index for `CpeV6Behavior::ConstantNonZero`.
    lan_const: u64,
    v4_segments: Vec<V4Segment>,
    v6_segments: Vec<V6Segment>,
}

/// Ground truth exposed alongside the timelines, for tests and experiment
/// validation.
#[derive(Debug, Clone)]
// lint:allow(dead-pub): carried by the pub IspSimResult::ground_truth field,
// so values reach other crates without the type name being spelled.
pub struct GroundTruth {
    /// The regional delegation pools that were instantiated.
    pub regions: Vec<Ipv6Prefix>,
    /// Delegated prefix length, if the ISP runs IPv6.
    pub delegated_len: Option<u8>,
}

/// Result of simulating one ISP.
// lint:allow(dead-pub): returned by World::run_one/run_each to other crates,
// which consume values without ever spelling the type name.
pub struct IspSimResult {
    /// The configuration that was simulated.
    pub config: IspConfig,
    /// Per-subscriber plans (index-aligned with `timelines`).
    pub plans: Vec<SubscriberPlan>,
    /// Per-subscriber ground-truth timelines.
    pub timelines: Vec<SubscriberTimeline>,
    /// Instantiated spatial ground truth.
    pub ground_truth: GroundTruth,
}

/// The simulation engine for one ISP.
pub struct IspSim {
    cfg: IspConfig,
    window: Window,
    rng: SmallRng,
    queue: EventQueue<Ev>,
    subs: Vec<SubState>,
    v4_pools: Vec<V4PoolState>,
    regions: Vec<RegionState>,
    groups: u32,
}

impl IspSim {
    /// Build a simulation, rejecting invalid configurations.
    pub fn try_new(cfg: IspConfig, window: Window, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self::new_unchecked(cfg, window, seed))
    }

    /// Build a simulation. Panics on invalid configuration; prefer
    /// [`IspSim::try_new`] for untrusted configs.
    pub fn new(cfg: IspConfig, window: Window, seed: u64) -> Self {
        cfg.validate().expect("invalid ISP config");
        Self::new_unchecked(cfg, window, seed)
    }

    fn new_unchecked(cfg: IspConfig, window: Window, seed: u64) -> Self {
        let rng = derive_rng(seed, cfg.asn.0 as u64);
        IspSim {
            cfg,
            window,
            rng,
            queue: EventQueue::new(),
            subs: Vec::new(),
            v4_pools: Vec::new(),
            regions: Vec::new(),
            groups: 1,
        }
    }

    /// Run the simulation to completion and return the timelines.
    pub fn run(mut self) -> IspSimResult {
        self.build_pools();
        self.init_subscribers();
        self.schedule_group_events();

        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.window.end {
                break;
            }
            self.handle(t, ev);
        }

        self.finish()
    }

    fn build_pools(&mut self) {
        if let Some(plan) = &self.cfg.v4_plan {
            for (pfx, weight) in &plan.pools {
                self.v4_pools.push(V4PoolState {
                    pool: Ipv4Pool::new(*pfx),
                    weight: *weight,
                    alloc: IndexAllocator::new(Ipv4Pool::new(*pfx).capacity()),
                });
            }
        }
        if let Some(plan) = self.cfg.v6_plan.clone() {
            // Regions cluster inside a random "metro" block of each
            // aggregate, so cross-region renumbering lands spatially near
            // (the paper observes DTAG cross-region CPLs of 24–40, not
            // all the way down to the /19 aggregate).
            let metro_span: u8 = 16;
            for (agg_idx, agg) in plan.aggregates.iter().enumerate() {
                let metro_len = plan.region_len.saturating_sub(metro_span).max(agg.len());
                let metro_count = agg.num_subprefixes(metro_len).expect("validated");
                let metro_idx = self.rng.gen_range(0..metro_count);
                let metro = agg
                    .nth_subprefix(metro_len, metro_idx)
                    .expect("validated lengths");
                let region_count = metro.num_subprefixes(plan.region_len).expect("validated");
                for _ in 0..plan.regions_per_aggregate {
                    let idx = self.rng.gen_range(0..region_count);
                    let region_pfx = metro
                        .nth_subprefix(plan.region_len, idx)
                        .expect("validated lengths");
                    let pool = Ipv6PrefixPool::new(region_pfx, plan.delegated_len)
                        .expect("validated lengths");
                    self.regions.push(RegionState {
                        alloc: IndexAllocator::new(pool.capacity()),
                        pool,
                        aggregate: agg_idx,
                    });
                }
            }
        }
        self.groups = if self.regions.is_empty() {
            self.v4_pools.len().max(1) as u32
        } else {
            self.regions.len() as u32
        };
    }

    fn init_subscribers(&mut self) {
        let t0 = self.window.start;
        for i in 0..self.cfg.subscribers {
            let plan = sample_plan(&self.cfg, &mut self.rng);
            let region = if self.regions.is_empty() {
                usize::MAX
            } else {
                self.rng.gen_range(0..self.regions.len())
            };
            let group = if region != usize::MAX {
                region as u32
            } else {
                i % self.groups
            };
            let lan_const = self.rng.gen_range(1..=255u64);
            self.subs.push(SubState {
                plan,
                group,
                region,
                v4_hold: None,
                v4_open: None,
                v6_hold: None,
                v6_open: None,
                offline: None,
                outage_started: t0,
                v4_gen: 0,
                v6_gen: 0,
                rot_gen: 0,
                lan_const,
                v4_segments: Vec::new(),
                v6_segments: Vec::new(),
            });
            let sub = i;
            self.attach_v4(t0, sub, false);
            self.attach_v6(t0, sub, true);
            self.schedule_periodic_timers(t0, sub, true);
            self.schedule_outages(t0, sub);
            self.schedule_stabilization(t0, sub);
        }
    }

    /// Schedule infrastructure / administrative events per group, with rates
    /// taken from the first subscriber class.
    fn schedule_group_events(&mut self) {
        let t0 = self.window.start;
        let outages = self.cfg.classes[0].outages;
        for g in 0..self.groups {
            if outages.infra_outage_mean_interval_hours.is_finite() {
                let dt = exp_hours(&mut self.rng, outages.infra_outage_mean_interval_hours);
                self.queue.schedule(t0 + dt, Ev::InfraOutage { group: g });
            }
            if outages.admin_renumber_mean_interval_hours.is_finite() {
                let dt = exp_hours(&mut self.rng, outages.admin_renumber_mean_interval_hours);
                self.queue.schedule(t0 + dt, Ev::AdminRenumber { group: g });
            }
        }
    }

    /// Schedule the per-subscriber periodic timers. With `random_phase`,
    /// the first firing is uniform within one period (subscribers did not
    /// all sign up at the window start).
    fn schedule_periodic_timers(&mut self, t: SimTime, sub: u32, random_phase: bool) {
        let s = &self.subs[sub as usize];
        let coupled_driver = s.plan.coupled
            && matches!(s.plan.v4, Some(V4Policy::PeriodicRenumber { .. }))
            && matches!(s.plan.v6, Some(V6Policy::PeriodicRenumber { .. }));

        match s.plan.v4 {
            Some(V4Policy::PeriodicRenumber {
                period_hours,
                jitter,
            }) => {
                let base = jitter_period(&mut self.rng, period_hours, jitter);
                let dt = if random_phase {
                    self.rng.gen_range(1..=base)
                } else {
                    base
                };
                let gen = self.subs[sub as usize].v4_gen;
                self.queue.schedule(t + dt, Ev::V4SessionEnd { sub, gen });
            }
            Some(V4Policy::CgnatShared {
                check_interval_hours,
                ..
            }) if check_interval_hours.is_finite() => {
                // Periodic CGNAT mapping checks, independent of the /64
                // session: the source of multi-/24 associations for
                // long-lived mobile /64s.
                let dt = exp_hours(&mut self.rng, check_interval_hours);
                let gen = self.subs[sub as usize].v4_gen;
                self.queue.schedule(t + dt, Ev::V4SessionEnd { sub, gen });
            }
            _ => {}
        }

        let s = &self.subs[sub as usize];
        match s.plan.v6 {
            Some(V6Policy::StableDelegation {
                maintenance_mean_hours,
                ..
            }) if maintenance_mean_hours.is_finite() => {
                let dt = exp_hours(&mut self.rng, maintenance_mean_hours);
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            Some(V6Policy::PeriodicRenumber {
                period_hours,
                jitter,
            }) if !coupled_driver => {
                let base = jitter_period(&mut self.rng, period_hours, jitter);
                let dt = if random_phase {
                    self.rng.gen_range(1..=base)
                } else {
                    base
                };
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            Some(V6Policy::SessionBased {
                mean_session_hours,
                tail_prob,
                tail_max_hours,
            }) => {
                let dt =
                    heavy_tail_hours(&mut self.rng, mean_session_hours, tail_prob, tail_max_hours);
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            _ => {}
        }

        self.schedule_rotate_timer(t, sub);
    }

    fn schedule_rotate_timer(&mut self, t: SimTime, sub: u32) {
        let s = &self.subs[sub as usize];
        if s.plan.v6.is_none() {
            return;
        }
        if let CpeV6Behavior::Scramble {
            rotate_every_hours: Some(every),
        } = s.plan.cpe
        {
            let dt = jitter_period(&mut self.rng, every, 0.02);
            let gen = s.rot_gen;
            self.queue.schedule(t + dt, Ev::Lan64Rotate { sub, gen });
        }
    }

    fn schedule_outages(&mut self, t: SimTime, sub: u32) {
        let outages = self.subs[sub as usize].plan.outages;
        if outages.cpe_outage_mean_interval_hours.is_finite() {
            let dt = exp_hours(&mut self.rng, outages.cpe_outage_mean_interval_hours);
            self.queue
                .schedule(t + dt, Ev::OutageStart { sub, long: false });
        }
        if outages.long_outage_mean_interval_hours.is_finite() {
            let dt = exp_hours(&mut self.rng, outages.long_outage_mean_interval_hours);
            self.queue
                .schedule(t + dt, Ev::OutageStart { sub, long: true });
        }
    }

    // ----- address/prefix (re)attachment --------------------------------

    /// Pick a v4 pool index by weight.
    fn pick_v4_pool(&mut self) -> usize {
        let weights: Vec<f64> = self.v4_pools.iter().map(|p| p.weight).collect();
        weighted_index(&mut self.rng, &weights)
    }

    /// Attach (or re-attach) the subscriber's IPv4 address.
    /// `sticky` asks the server to re-issue the previous binding.
    fn attach_v4(&mut self, t: SimTime, sub: u32, sticky: bool) {
        let Some(policy) = self.subs[sub as usize].plan.v4 else {
            return;
        };
        match policy {
            V4Policy::CgnatShared { rebind_prob, .. } => {
                let keep = sticky
                    || (self.subs[sub as usize].v4_open.is_some()
                        && !self.rng.gen_bool(rebind_prob));
                let addr = if keep {
                    self.subs[sub as usize]
                        .v4_open
                        .map(|(_, a, _)| a)
                        .unwrap_or_else(|| self.random_cgnat_addr(sub))
                } else {
                    self.random_cgnat_addr(sub)
                };
                self.open_v4(t, sub, addr, true);
            }
            V4Policy::DhcpSticky { .. } | V4Policy::PeriodicRenumber { .. } => {
                // Release the previous exclusive hold (binding memory in the
                // allocator persists for sticky reacquisition).
                let prev = self.subs[sub as usize].v4_hold;
                if let Some((pool_idx, idx)) = self.subs[sub as usize].v4_hold.take() {
                    self.v4_pools[pool_idx].alloc.release(idx);
                }
                let client = sub as u64;
                let (p_near, near_radius) = self
                    .cfg
                    .v4_plan
                    .as_ref()
                    .map(|p| (p.p_near, p.near_radius))
                    .unwrap_or((0.0, 0));
                let (pool_idx, idx) = if sticky {
                    // Sticky: try the pool that held the last binding.
                    let pool_idx = prev.map(|(p, _)| p).unwrap_or_else(|| self.pick_v4_pool());
                    let idx = self.v4_pools[pool_idx]
                        .alloc
                        .acquire_sticky(&mut self.rng, client);
                    (pool_idx, idx)
                } else if let Some((prev_pool, prev_idx)) =
                    prev.filter(|_| p_near > 0.0 && self.rng.gen_bool(p_near))
                {
                    // Sequential-allocator locality: a nearby address from
                    // the same pool segment.
                    let idx = self.v4_pools[prev_pool].alloc.acquire_near(
                        &mut self.rng,
                        client,
                        prev_idx,
                        near_radius,
                    );
                    (prev_pool, idx)
                } else {
                    let pool_idx = self.pick_v4_pool();
                    let idx = self.v4_pools[pool_idx]
                        .alloc
                        .acquire_any(&mut self.rng, client);
                    (pool_idx, idx)
                };
                let Some(idx) = idx else {
                    // Pool exhausted: subscriber stays unaddressed.
                    return;
                };
                let addr = self.v4_pools[pool_idx]
                    .pool
                    .address(idx)
                    .expect("index within pool");
                self.subs[sub as usize].v4_hold = Some((pool_idx, idx));
                self.open_v4(t, sub, addr, false);
            }
        }
    }

    fn random_cgnat_addr(&mut self, _sub: u32) -> Ipv4Addr {
        let pool_idx = self.pick_v4_pool();
        let pool = &self.v4_pools[pool_idx].pool;
        let idx = self.rng.gen_range(0..pool.capacity());
        pool.address(idx).expect("index within pool")
    }

    /// Attach (or re-attach) the subscriber's IPv6 delegation and LAN /64.
    /// `new_delegation` forces a fresh delegation; otherwise the current one
    /// (or the sticky binding) is kept.
    fn attach_v6(&mut self, t: SimTime, sub: u32, fresh: bool) {
        if self.subs[sub as usize].plan.v6.is_none() || self.regions.is_empty() {
            return;
        }
        let client = sub as u64;

        let (region_idx, idx) =
            if let (false, Some(held)) = (fresh, self.subs[sub as usize].v6_hold) {
                held
            } else {
                // Release, then possibly move region, then acquire a new
                // delegation.
                if let Some((r, i)) = self.subs[sub as usize].v6_hold.take() {
                    self.regions[r].alloc.release(i);
                }
                let p_stay = self
                    .cfg
                    .v6_plan
                    .as_ref()
                    .map(|p| p.p_stay_region)
                    .unwrap_or(1.0);
                let mut region = self.subs[sub as usize].region;
                if self.regions.len() > 1 && !self.rng.gen_bool(p_stay.clamp(0.0, 1.0)) {
                    let mut new_region = self.rng.gen_range(0..self.regions.len());
                    if new_region == region {
                        new_region = (new_region + 1) % self.regions.len();
                    }
                    region = new_region;
                    self.subs[sub as usize].region = region;
                }
                let Some(idx) = self.regions[region]
                    .alloc
                    .acquire_any(&mut self.rng, client)
                else {
                    return;
                };
                (region, idx)
            };

        self.subs[sub as usize].v6_hold = Some((region_idx, idx));
        let delegated = self.regions[region_idx]
            .pool
            .prefix(idx)
            .expect("index within pool");
        let lan64 = self.choose_lan64(sub, delegated, fresh);
        self.open_v6(t, sub, delegated, lan64);
    }

    /// Re-issue the same delegation but choose a fresh LAN /64 (scramble
    /// CPEs do this on every reconnect, and on rotation timers).
    fn rescramble_lan64(&mut self, t: SimTime, sub: u32) {
        let Some((_, delegated, _)) = self.subs[sub as usize].v6_open else {
            return;
        };
        let lan64 = self.choose_lan64(sub, delegated, true);
        self.open_v6(t, sub, delegated, lan64);
    }

    fn choose_lan64(&mut self, sub: u32, delegated: Ipv6Prefix, fresh: bool) -> Ipv6Prefix {
        let capacity = delegated.num_subprefixes(64).expect("delegated <= 64");
        let s = &self.subs[sub as usize];
        let idx = match s.plan.cpe {
            CpeV6Behavior::ZeroOut => 0,
            CpeV6Behavior::ConstantNonZero => s.lan_const % capacity.max(1),
            CpeV6Behavior::Scramble { .. } => match (fresh, s.v6_open) {
                // Keep the currently announced /64 when re-attaching to the
                // same delegation.
                (false, Some((_, cur_deleg, cur_lan))) if cur_deleg == delegated => {
                    return cur_lan;
                }
                _ => self.rng.gen_range(0..capacity.max(1)),
            },
        };
        delegated.nth_subprefix(64, idx).expect("within delegation")
    }

    // ----- segment bookkeeping ------------------------------------------

    fn open_v4(&mut self, t: SimTime, sub: u32, addr: Ipv4Addr, cgnat: bool) {
        let s = &mut self.subs[sub as usize];
        if let Some((start, cur, cur_cgnat)) = s.v4_open {
            if cur == addr && cur_cgnat == cgnat {
                return; // unchanged
            }
            if t > start {
                s.v4_segments.push(V4Segment {
                    start,
                    end: t,
                    addr: cur,
                    cgnat: cur_cgnat,
                });
            }
        }
        s.v4_open = Some((t, addr, cgnat));
    }

    fn close_v4(&mut self, t: SimTime, sub: u32) {
        let s = &mut self.subs[sub as usize];
        if let Some((start, addr, cgnat)) = s.v4_open.take() {
            if t > start {
                s.v4_segments.push(V4Segment {
                    start,
                    end: t,
                    addr,
                    cgnat,
                });
            }
        }
    }

    fn open_v6(&mut self, t: SimTime, sub: u32, delegated: Ipv6Prefix, lan64: Ipv6Prefix) {
        let s = &mut self.subs[sub as usize];
        if let Some((start, cur_deleg, cur_lan)) = s.v6_open {
            if cur_deleg == delegated && cur_lan == lan64 {
                return;
            }
            if t > start {
                s.v6_segments.push(V6Segment {
                    start,
                    end: t,
                    delegated: cur_deleg,
                    lan64: cur_lan,
                });
            }
        }
        s.v6_open = Some((t, delegated, lan64));
    }

    fn close_v6(&mut self, t: SimTime, sub: u32) {
        let s = &mut self.subs[sub as usize];
        if let Some((start, delegated, lan64)) = s.v6_open.take() {
            if t > start {
                s.v6_segments.push(V6Segment {
                    start,
                    end: t,
                    delegated,
                    lan64,
                });
            }
        }
    }

    // ----- event handlers -------------------------------------------------

    fn handle(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::V4SessionEnd { sub, gen } => self.on_v4_session_end(t, sub, gen),
            Ev::V6RenumberDue { sub, gen } => self.on_v6_renumber_due(t, sub, gen),
            Ev::Lan64Rotate { sub, gen } => self.on_lan64_rotate(t, sub, gen),
            Ev::OutageStart { sub, long } => self.on_outage_start(t, sub, long),
            Ev::OutageEnd { sub } => self.on_outage_end(t, sub),
            Ev::InfraOutage { group } => self.on_infra_outage(t, group),
            Ev::AdminRenumber { group } => self.on_admin_renumber(t, group),
            Ev::Stabilize { sub, to_class } => self.on_stabilize(t, sub, to_class),
        }
    }

    fn on_v4_session_end(&mut self, t: SimTime, sub: u32, gen: u32) {
        let s = &self.subs[sub as usize];
        if s.v4_gen != gen || s.offline.is_some() {
            return;
        }
        // RADIUS-style renumbering: a fresh, non-sticky assignment.
        self.attach_v4(t, sub, false);

        // Coupled dual-stack networks renumber the delegation in the same
        // breath (the paper observes 90.6% same-hour simultaneity in DTAG).
        let s = &self.subs[sub as usize];
        let coupled_driver =
            s.plan.coupled && matches!(s.plan.v6, Some(V6Policy::PeriodicRenumber { .. }));
        if coupled_driver {
            self.attach_v6(t, sub, true);
        }

        // Schedule the next session end / mapping check.
        match self.subs[sub as usize].plan.v4 {
            Some(V4Policy::PeriodicRenumber {
                period_hours,
                jitter,
            }) => {
                let dt = jitter_period(&mut self.rng, period_hours, jitter);
                let gen = self.subs[sub as usize].v4_gen;
                self.queue.schedule(t + dt, Ev::V4SessionEnd { sub, gen });
            }
            Some(V4Policy::CgnatShared {
                check_interval_hours,
                ..
            }) if check_interval_hours.is_finite() => {
                let dt = exp_hours(&mut self.rng, check_interval_hours);
                let gen = self.subs[sub as usize].v4_gen;
                self.queue.schedule(t + dt, Ev::V4SessionEnd { sub, gen });
            }
            _ => {}
        }
    }

    fn on_v6_renumber_due(&mut self, t: SimTime, sub: u32, gen: u32) {
        let s = &self.subs[sub as usize];
        if s.v6_gen != gen || s.offline.is_some() {
            return;
        }
        self.attach_v6(t, sub, true);

        let s = &self.subs[sub as usize];
        match s.plan.v6 {
            Some(V6Policy::StableDelegation {
                maintenance_mean_hours,
                ..
            }) if maintenance_mean_hours.is_finite() => {
                let dt = exp_hours(&mut self.rng, maintenance_mean_hours);
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            Some(V6Policy::PeriodicRenumber {
                period_hours,
                jitter,
            }) => {
                // Coupled networks with a non-periodic v4 policy still
                // renumber v4 alongside the delegation.
                if s.plan.coupled && s.plan.v4.is_some() {
                    self.attach_v4(t, sub, false);
                }
                let dt = jitter_period(&mut self.rng, period_hours, jitter);
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            Some(V6Policy::SessionBased {
                mean_session_hours,
                tail_prob,
                tail_max_hours,
            }) => {
                // A new attachment session: CGNAT may rebind the public v4.
                self.attach_v4(t, sub, false);
                let dt =
                    heavy_tail_hours(&mut self.rng, mean_session_hours, tail_prob, tail_max_hours);
                let gen = self.subs[sub as usize].v6_gen;
                self.queue.schedule(t + dt, Ev::V6RenumberDue { sub, gen });
            }
            _ => {}
        }
    }

    fn on_lan64_rotate(&mut self, t: SimTime, sub: u32, gen: u32) {
        let s = &self.subs[sub as usize];
        if s.rot_gen != gen || s.offline.is_some() {
            return;
        }
        self.rescramble_lan64(t, sub);
        self.schedule_rotate_timer(t, sub);
    }

    fn on_outage_start(&mut self, t: SimTime, sub: u32, long: bool) {
        let outages = self.subs[sub as usize].plan.outages;
        let (mean_dur, mean_interval) = if long {
            (
                outages.long_outage_mean_duration_hours,
                outages.long_outage_mean_interval_hours,
            )
        } else {
            (
                outages.cpe_outage_mean_duration_hours,
                outages.cpe_outage_mean_interval_hours,
            )
        };
        let duration = exp_hours(&mut self.rng, mean_dur);

        // Schedule the next occurrence of this outage class regardless.
        if mean_interval.is_finite() {
            let dt = duration + exp_hours(&mut self.rng, mean_interval);
            self.queue.schedule(t + dt, Ev::OutageStart { sub, long });
        }

        if self.subs[sub as usize].offline.is_some() {
            return; // already down
        }
        self.begin_outage(
            t,
            sub,
            if long {
                OutageKind::Long
            } else {
                OutageKind::Short
            },
        );
        self.queue.schedule(t + duration, Ev::OutageEnd { sub });
    }

    fn begin_outage(&mut self, t: SimTime, sub: u32, kind: OutageKind) {
        self.close_v4(t, sub);
        self.close_v6(t, sub);
        let s = &mut self.subs[sub as usize];
        s.offline = Some(kind);
        s.outage_started = t;
        // Invalidate in-flight timers; they are re-armed at outage end.
        s.v4_gen = s.v4_gen.wrapping_add(1);
        s.v6_gen = s.v6_gen.wrapping_add(1);
        s.rot_gen = s.rot_gen.wrapping_add(1);
    }

    fn on_outage_end(&mut self, t: SimTime, sub: u32) {
        let Some(kind) = self.subs[sub as usize].offline.take() else {
            return;
        };
        let down = self.subs[sub as usize].outage_started;
        let plan = self.subs[sub as usize].plan.clone();

        // --- IPv4 reattachment ---
        match plan.v4 {
            Some(V4Policy::DhcpSticky { lease_hours }) => {
                // The CPE renews opportunistically while online, so the
                // lease is fresh at the moment of failure (RFC 2131 FSM in
                // `crate::dhcp`); state is also lost on infrastructure
                // outages regardless of lease timing.
                let lease = LeaseState::granted(down, lease_hours);
                let lost_state = kind == OutageKind::Infra;
                if lost_state || !lease.survives_outage(down, t) {
                    // Lease expired or server state lost: the sticky memory
                    // is dropped, but the previous hold is left in place so
                    // the allocator can still apply near-reassignment
                    // locality (attach_v4 releases it).
                    if let Some((pool_idx, _)) = self.subs[sub as usize].v4_hold {
                        self.v4_pools[pool_idx].alloc.forget(sub as u64);
                    }
                    self.attach_v4(t, sub, false);
                } else {
                    // Re-open the same address (the hold was kept).
                    self.attach_v4(t, sub, true);
                }
            }
            Some(V4Policy::PeriodicRenumber { .. }) => {
                // RADIUS: every reconnect renumbers.
                self.attach_v4(t, sub, false);
            }
            Some(V4Policy::CgnatShared { .. }) => {
                // New attachment session.
                self.attach_v4(t, sub, false);
            }
            None => {}
        }

        // --- IPv6 reattachment ---
        match plan.v6 {
            Some(V6Policy::StableDelegation {
                valid_lifetime_hours,
                ..
            }) => {
                let delegation =
                    DelegationState::granted(down, valid_lifetime_hours / 2, valid_lifetime_hours);
                let lost = kind == OutageKind::Infra || !delegation.survives_outage(down, t);
                if lost {
                    self.attach_v6(t, sub, true);
                } else {
                    // Same delegation; scramble CPEs still re-pick the /64.
                    if matches!(plan.cpe, CpeV6Behavior::Scramble { .. }) {
                        self.reattach_same_delegation_rescrambled(t, sub);
                    } else {
                        self.attach_v6(t, sub, false);
                    }
                }
            }
            Some(V6Policy::PeriodicRenumber { .. }) => {
                self.attach_v6(t, sub, true);
            }
            Some(V6Policy::SessionBased { .. }) => {
                self.attach_v6(t, sub, true);
            }
            None => {}
        }

        self.schedule_periodic_timers(t, sub, false);
    }

    /// After a reboot a scramble CPE keeps its delegation but announces a
    /// new random /64 out of it.
    fn reattach_same_delegation_rescrambled(&mut self, t: SimTime, sub: u32) {
        let Some((region_idx, idx)) = self.subs[sub as usize].v6_hold else {
            self.attach_v6(t, sub, true);
            return;
        };
        let delegated = self.regions[region_idx]
            .pool
            .prefix(idx)
            .expect("held index valid");
        let capacity = delegated.num_subprefixes(64).expect("delegated <= 64");
        let lan_idx = self.rng.gen_range(0..capacity.max(1));
        let lan64 = delegated
            .nth_subprefix(64, lan_idx)
            .expect("within delegation");
        self.open_v6(t, sub, delegated, lan64);
    }

    fn on_infra_outage(&mut self, t: SimTime, group: u32) {
        // Reschedule the next infrastructure event for this group.
        let outages = self.cfg.classes[0].outages;
        if outages.infra_outage_mean_interval_hours.is_finite() {
            let dt = exp_hours(&mut self.rng, outages.infra_outage_mean_interval_hours);
            self.queue.schedule(t + dt, Ev::InfraOutage { group });
        }

        let affected: Vec<u32> = (0..self.subs.len() as u32)
            .filter(|&i| self.subs[i as usize].group == group)
            .filter(|&i| self.subs[i as usize].offline.is_none())
            .collect();
        for sub in affected {
            self.begin_outage(t, sub, OutageKind::Infra);
            // Service restoration staggered over a few hours.
            let dt = 1 + exp_hours(&mut self.rng, 1.0);
            self.queue.schedule(t + dt, Ev::OutageEnd { sub });
        }
    }

    fn on_admin_renumber(&mut self, t: SimTime, group: u32) {
        let outages = self.cfg.classes[0].outages;
        if outages.admin_renumber_mean_interval_hours.is_finite() {
            let dt = exp_hours(&mut self.rng, outages.admin_renumber_mean_interval_hours);
            self.queue.schedule(t + dt, Ev::AdminRenumber { group });
        }

        let affected: Vec<u32> = (0..self.subs.len() as u32)
            .filter(|&i| self.subs[i as usize].group == group)
            .filter(|&i| self.subs[i as usize].offline.is_none())
            .collect();
        for sub in affected {
            // Forced renumbering without downtime: new v4 assignment and a
            // forced region move for the delegation.
            if self.subs[sub as usize].plan.v4.is_some() {
                if let Some((pool_idx, _)) = self.subs[sub as usize].v4_hold {
                    self.v4_pools[pool_idx].alloc.forget(sub as u64);
                }
                self.attach_v4(t, sub, false);
            }
            if self.subs[sub as usize].plan.v6.is_some() && self.regions.len() > 1 {
                // Administrative renumbering restructures pools *within* the
                // operator's regional deployment (the same BGP aggregate);
                // cross-aggregate moves only happen through the ordinary
                // region-move probability.
                let old_region = self.subs[sub as usize].region;
                let agg = self.regions[old_region].aggregate;
                let candidates: Vec<usize> = (0..self.regions.len())
                    .filter(|&r| r != old_region && self.regions[r].aggregate == agg)
                    .collect();
                let Some(&new_region) =
                    candidates.get(self.rng.gen_range(0..candidates.len().max(1)))
                else {
                    continue;
                };
                if let Some((r, i)) = self.subs[sub as usize].v6_hold.take() {
                    self.regions[r].alloc.release(i);
                    self.regions[r].alloc.forget(sub as u64);
                }
                self.subs[sub as usize].region = new_region;
                self.attach_v6(t, sub, true);
            }
        }
    }

    /// Schedule the subscriber's class migration, if its class has one
    /// configured.
    fn schedule_stabilization(&mut self, t: SimTime, sub: u32) {
        let class_idx = self.subs[sub as usize].plan.class_idx;
        let Some(st) = self
            .cfg
            .stabilization
            .iter()
            .find(|st| st.from_class == class_idx)
            .copied()
        else {
            return;
        };
        let dt = exp_hours(&mut self.rng, st.mean_hours);
        self.queue.schedule(
            t + dt,
            Ev::Stabilize {
                sub,
                to_class: st.to_class,
            },
        );
    }

    /// Migrate the subscriber to `to_class`: adopt its policies without
    /// renumbering anything — the line simply stops (or starts) whatever
    /// the new class does. A previously v4-only line acquires a delegation
    /// when the target class is dual-stack (networks "increasingly
    /// introducing dual-stack", Section 3.2).
    fn on_stabilize(&mut self, t: SimTime, sub: u32, to_class: usize) {
        if self.subs[sub as usize].plan.class_idx == to_class {
            return;
        }
        let target = self.cfg.classes[to_class].clone();
        {
            let s = &mut self.subs[sub as usize];
            s.plan.class_idx = to_class;
            s.plan.dual_stack = target.dual_stack;
            s.plan.v4 = target.v4;
            s.plan.v6 = target.v6;
            s.plan.coupled = target.coupled;
            // The home hardware is unchanged unless the line gains IPv6 for
            // the first time, in which case a CPE behaviour is drawn.
            // Invalidate in-flight timers; new ones follow the new plan.
            s.v4_gen = s.v4_gen.wrapping_add(1);
            s.v6_gen = s.v6_gen.wrapping_add(1);
            s.rot_gen = s.rot_gen.wrapping_add(1);
        }
        if self.subs[sub as usize].plan.v6.is_some() && self.subs[sub as usize].v6_hold.is_none() {
            if !target.cpe_mix.is_empty() {
                let weights: Vec<f64> = target.cpe_mix.iter().map(|(w, _)| *w).collect();
                let pick = weighted_index(&mut self.rng, &weights);
                self.subs[sub as usize].plan.cpe = target.cpe_mix[pick].1;
            }
            self.attach_v6(t, sub, true);
        }
        if self.subs[sub as usize].plan.v6.is_none() {
            // Losing v6 (not used by the shipped profiles, but supported).
            if let Some((r, i)) = self.subs[sub as usize].v6_hold.take() {
                self.regions[r].alloc.release(i);
            }
            self.close_v6(t, sub);
        }
        if self.subs[sub as usize].offline.is_none() {
            self.schedule_periodic_timers(t, sub, true);
        }
    }

    // ----- finalization ---------------------------------------------------

    fn finish(mut self) -> IspSimResult {
        let end = self.window.end;
        let asn = self.cfg.asn;
        let mut timelines = Vec::with_capacity(self.subs.len());
        let mut plans = Vec::with_capacity(self.subs.len());
        for (i, mut s) in std::mem::take(&mut self.subs).into_iter().enumerate() {
            // Close open segments at the window end.
            if let Some((start, addr, cgnat)) = s.v4_open.take() {
                if end > start {
                    s.v4_segments.push(V4Segment {
                        start,
                        end,
                        addr,
                        cgnat,
                    });
                }
            }
            if let Some((start, delegated, lan64)) = s.v6_open.take() {
                if end > start {
                    s.v6_segments.push(V6Segment {
                        start,
                        end,
                        delegated,
                        lan64,
                    });
                }
            }
            let tl = SubscriberTimeline {
                id: SubscriberId {
                    asn,
                    index: i as u32,
                },
                dual_stack: s.plan.dual_stack,
                device_iid: s.plan.device_iid,
                v4: s.v4_segments,
                v6: s.v6_segments,
            };
            debug_assert!(tl.check_invariants().is_ok());
            plans.push(s.plan);
            timelines.push(tl);
        }
        IspSimResult {
            ground_truth: GroundTruth {
                regions: self.regions.iter().map(|r| r.pool.base()).collect(),
                delegated_len: self.cfg.v6_plan.as_ref().map(|p| p.delegated_len),
            },
            config: self.cfg,
            plans,
            timelines,
        }
    }
}
