//! ISP profiles reproducing the networks the paper studies.
//!
//! Each profile encodes, as *mechanism configuration*, what the paper
//! reports about that operator:
//!
//! * Table 1 probe counts and dual-stack fractions,
//! * Section 3.2 renumbering periods (DTAG 24 h, Proximus 1.5 d, Orange 1 w,
//!   BT 2 w; 24-h IPv6 renumbering in DTAG/Versatel/Netcologne/Telefonica
//!   DE/M-net; 12 h in ANTEL; 48 h in Global Village),
//! * Table 2 spatial change rates (diff-/24 and diff-BGP percentages, via
//!   pool weights and near-reassignment probabilities),
//! * Section 5.2 pool structure (region lengths behind the CPL histograms),
//! * Section 5.3 delegation lengths (/56 DTAG/Orange/Sky, /62 Kabel DE,
//!   /48 Netcologne) and CPE behaviours (DTAG prefix scrambling),
//! * Section 4 CDN behaviours (cellular CGNAT multiplexing, session-scoped
//!   /64s, the EE-like long-tail mobile outlier in RIPE).
//!
//! Two "eras" are provided: [`Era::Atlas`] mixes match the 2014–2020
//! longitudinal averages; [`Era::Cdn`] mixes reflect the 2020 state the CDN
//! window sees (the paper notes durations grew over the years, especially
//! in DTAG and Orange, and the CDN only observes dual-stacked clients).

use crate::config::{
    CpeV6Behavior, IspConfig, OutageConfig, Stabilization, SubscriberClass, V4Policy, V4PoolPlan,
    V6Policy, V6PoolPlan,
};
use crate::world::World;
use dynamips_routing::{AccessType, Asn, Rir};

/// Which collection window a profile is being instantiated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Era {
    /// The 2014-09 → 2020-05 RIPE Atlas window (longitudinal mix).
    Atlas,
    /// The 2020-01 → 2020-06 CDN window (late-era mix, dual-stack heavy).
    Cdn,
}

// ---------------------------------------------------------------------------
// small builders
// ---------------------------------------------------------------------------

fn periodic_v4(hours: u64) -> V4Policy {
    V4Policy::PeriodicRenumber {
        period_hours: hours,
        jitter: 0.02,
    }
}

fn sticky_v4(lease_hours: u64) -> V4Policy {
    V4Policy::DhcpSticky { lease_hours }
}

fn periodic_v6(hours: u64) -> V6Policy {
    V6Policy::PeriodicRenumber {
        period_hours: hours,
        jitter: 0.02,
    }
}

fn stable_v6(valid_days: u64) -> V6Policy {
    V6Policy::StableDelegation {
        valid_lifetime_hours: valid_days * 24,
        maintenance_mean_hours: f64::INFINITY,
    }
}

/// Stable delegation with occasional server-side maintenance renumbering
/// (drives v4/v6 change *non*-co-occurrence on Comcast-like networks).
fn stable_v6_maint(valid_days: u64, maintenance_days: f64) -> V6Policy {
    V6Policy::StableDelegation {
        valid_lifetime_hours: valid_days * 24,
        maintenance_mean_hours: maintenance_days * 24.0,
    }
}

fn v4p(s: &str) -> dynamips_netaddr::Ipv4Prefix {
    s.parse().expect("profile IPv4 prefix")
}

fn v6p(s: &str) -> dynamips_netaddr::Ipv6Prefix {
    s.parse().expect("profile IPv6 prefix")
}

fn pools(specs: &[(&str, f64)], p_near: f64) -> V4PoolPlan {
    V4PoolPlan {
        pools: specs.iter().map(|(s, w)| (v4p(s), *w)).collect(),
        announcements: Vec::new(),
        p_near,
        near_radius: 16,
    }
}

/// A typical residential CPE mix: mostly standards-following zero-out
/// devices, a few scramblers and a few vendors numbering LANs from one.
fn cpe_mix_mostly_zero() -> Vec<(f64, CpeV6Behavior)> {
    vec![
        (0.85, CpeV6Behavior::ZeroOut),
        (
            0.08,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.07, CpeV6Behavior::ConstantNonZero),
    ]
}

fn class(
    weight: f64,
    dual_stack: bool,
    v4: Option<V4Policy>,
    v6: Option<V6Policy>,
    coupled: bool,
    cpe_mix: Vec<(f64, CpeV6Behavior)>,
    outages: OutageConfig,
) -> SubscriberClass {
    SubscriberClass {
        weight,
        dual_stack,
        v4,
        v6,
        coupled,
        cpe_mix,
        outages,
    }
}

// ---------------------------------------------------------------------------
// the ten Table-1 ASes (plus Sky UK from Figure 6)
// ---------------------------------------------------------------------------

/// Deutsche Telekom (AS3320). 24-hour renumbering in IPv4 and IPv6, highly
/// synchronized (90.6% same-hour); /56 delegations out of 2003::/19; a large
/// share of CPEs scramble the delegated bits daily.
pub fn dtag(subscribers: u32, era: Era) -> IspConfig {
    // In the longitudinal (Atlas) era many DTAG CPEs re-scramble the
    // delegated bits daily; by the CDN era rotation only happens on
    // reconnect (daily renumbering had largely been phased out, which is
    // also why the paper sees DTAG durations grow over the years).
    let rotate = match era {
        Era::Atlas => Some(24),
        Era::Cdn => None,
    };
    let cpe = vec![
        (0.52, CpeV6Behavior::ZeroOut),
        (
            0.40,
            CpeV6Behavior::Scramble {
                rotate_every_hours: rotate,
            },
        ),
        (0.08, CpeV6Behavior::ConstantNonZero),
    ];
    let q = OutageConfig::quiet();
    let (w_nds, w_ds_periodic, w_ds_stable, w_ds_weekly): (f64, f64, f64, f64) = match era {
        Era::Atlas => (0.32, 0.41, 0.27, 0.0),
        // By 2020 most lines renumber on (roughly weekly) reconnects
        // rather than on a daily timer.
        Era::Cdn => (0.04, 0.008, 0.832, 0.12),
    };
    // ~12% of coupled-era lines renumber the two families independently,
    // landing the paper's 90.6% same-hour simultaneity.
    let w_ds_uncoupled = w_ds_periodic * 0.12;
    let w_ds_coupled = w_ds_periodic - w_ds_uncoupled;
    IspConfig {
        asn: Asn(3320),
        name: "DTAG".into(),
        country: "Germany".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[("84.128.0.0/12", 0.83), ("91.0.0.0/13", 0.17)],
            0.065,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2003::/19")],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 6,
            p_stay_region: 0.999,
        }),
        classes: vec![
            class(w_nds, false, Some(periodic_v4(24)), None, false, vec![], q),
            class(
                w_ds_coupled,
                true,
                Some(periodic_v4(24)),
                Some(periodic_v6(24)),
                true,
                cpe.clone(),
                q,
            ),
            class(
                w_ds_uncoupled.max(0.001),
                true,
                Some(periodic_v4_jittered(24, 0.2)),
                Some(V6Policy::PeriodicRenumber {
                    period_hours: 24,
                    jitter: 0.2,
                }),
                false,
                cpe.clone(),
                q,
            ),
            class(
                w_ds_stable,
                true,
                Some(sticky_v4(24)),
                Some(stable_v6(14)),
                false,
                cpe.clone(),
                q,
            ),
            class(
                w_ds_weekly.max(0.0005),
                true,
                Some(periodic_v4_jittered(168, 0.6)),
                Some(V6Policy::PeriodicRenumber {
                    period_hours: 168,
                    jitter: 0.6,
                }),
                true,
                cpe,
                q,
            ),
        ],
        // The paper's "durations increased over the years" (Section 3.2):
        // daily-renumbering lines gradually migrate to stable dual-stack
        // provisioning over the longitudinal window.
        stabilization: match era {
            Era::Atlas => vec![
                Stabilization {
                    from_class: 1, // coupled daily renumbering
                    to_class: 3,   // stable dual-stack
                    mean_hours: 9.0 * 365.0 * 24.0,
                },
                Stabilization {
                    from_class: 0, // legacy non-dual-stack
                    to_class: 3,
                    mean_hours: 12.0 * 365.0 * 24.0,
                },
            ],
            Era::Cdn => vec![],
        },
        subscribers,
    }
}

/// Orange France (AS3215). 1-week IPv4 renumbering for legacy lines, stable
/// dual-stack; /56 delegations with 99.7% zeroed trailing bits.
pub fn orange(subscribers: u32, era: Era) -> IspConfig {
    let cpe = vec![
        (0.97, CpeV6Behavior::ZeroOut),
        (
            0.02,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.01, CpeV6Behavior::ConstantNonZero),
    ];
    let q = OutageConfig::quiet();
    let (w_nds, w_ds_periodic, w_ds_stable) = match era {
        Era::Atlas => (0.44, 0.0, 0.56),
        Era::Cdn => (0.05, 0.02, 0.93),
    };
    let mut classes = vec![
        class(w_nds, false, Some(periodic_v4(168)), None, false, vec![], q),
        class(
            w_ds_stable,
            true,
            Some(sticky_v4(168)),
            Some(stable_v6(30)),
            false,
            cpe.clone(),
            q,
        ),
    ];
    if w_ds_periodic > 0.0 {
        classes.push(class(
            w_ds_periodic,
            true,
            Some(periodic_v4(168)),
            Some(stable_v6(30)),
            false,
            cpe,
            q,
        ));
    }
    let stabilization = match era {
        Era::Atlas => vec![Stabilization {
            from_class: 0, // weekly-renumbered legacy lines
            to_class: 1,   // stable dual-stack
            mean_hours: 10.0 * 365.0 * 24.0,
        }],
        Era::Cdn => vec![],
    };
    IspConfig {
        asn: Asn(3215),
        name: "Orange".into(),
        country: "France".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("90.0.0.0/12", 0.5),
                ("86.192.0.0/13", 0.3),
                ("92.128.0.0/13", 0.2),
            ],
            0.01,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a01:c000::/20"), v6p("2a01:d000::/20")],
            region_len: 36,
            delegated_len: 56,
            regions_per_aggregate: 4,
            p_stay_region: 0.97,
        }),
        classes,
        stabilization,
        subscribers,
    }
}

/// Comcast (AS7922). Sticky DHCP on both families, long durations, changes
/// driven by outages and not synchronized between v4 and v6; /60
/// delegations; about half of the rare IPv4 changes stay inside the /24.
pub fn comcast(subscribers: u32, era: Era) -> IspConfig {
    let cpe = vec![
        (0.75, CpeV6Behavior::ZeroOut),
        (
            0.15,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.10, CpeV6Behavior::ConstantNonZero),
    ];
    // More eventful than the quiet default: visible but rare changes.
    let outages = OutageConfig {
        cpe_outage_mean_interval_hours: 60.0 * 24.0,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: 200.0 * 24.0,
        long_outage_mean_duration_hours: 7.0 * 24.0,
        infra_outage_mean_interval_hours: 2000.0 * 24.0,
        admin_renumber_mean_interval_hours: 3000.0 * 24.0,
    };
    let w_nds = match era {
        Era::Atlas => 0.32,
        Era::Cdn => 0.05,
    };
    let v4_pools: Vec<(&str, f64)> = vec![
        ("24.0.0.0/14", 0.1),
        ("24.4.0.0/14", 0.1),
        ("67.160.0.0/14", 0.1),
        ("68.32.0.0/14", 0.1),
        ("69.136.0.0/14", 0.1),
        ("71.192.0.0/14", 0.1),
        ("73.0.0.0/14", 0.1),
        ("75.64.0.0/14", 0.1),
        ("76.16.0.0/14", 0.1),
        ("98.192.0.0/14", 0.1),
    ];
    IspConfig {
        asn: Asn(7922),
        name: "Comcast".into(),
        country: "U.S.".into(),
        rir: Rir::Arin,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(&v4_pools, 0.58)),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![
                v6p("2601::/24"),
                v6p("2601:100::/24"),
                v6p("2601:200::/24"),
                v6p("2601:300::/24"),
            ],
            region_len: 40,
            delegated_len: 60,
            regions_per_aggregate: 2,
            p_stay_region: 0.88,
        }),
        classes: vec![
            class(
                w_nds,
                false,
                Some(sticky_v4(96)),
                None,
                false,
                vec![],
                outages,
            ),
            class(
                1.0 - w_nds,
                true,
                Some(sticky_v4(96)),
                Some(stable_v6_maint(30, 300.0)),
                false,
                cpe,
                outages,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// Liberty Global (AS6830). Moderately dynamic IPv4 (monthly-ish), stable
/// IPv6 out of /44-grained regions; only 14% of v4 changes cross BGP
/// prefixes (two unevenly-sized pools).
pub fn lgi(subscribers: u32, era: Era) -> IspConfig {
    let q = OutageConfig::quiet();
    let (w_nds, w_ds_periodic, w_ds_stable) = match era {
        Era::Atlas => (0.68, 0.32, 0.0),
        Era::Cdn => (0.05, 0.28, 0.67),
    };
    IspConfig {
        asn: Asn(6830),
        name: "LGI".into(),
        country: "many".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[("80.56.0.0/13", 0.86), ("24.132.0.0/14", 0.14)],
            0.44,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a02:8000::/24")],
            region_len: 44,
            delegated_len: 56,
            regions_per_aggregate: 6,
            p_stay_region: 0.98,
        }),
        classes: {
            let mut classes = vec![
                class(
                    w_nds,
                    false,
                    Some(periodic_v4_jittered(500, 0.5)),
                    None,
                    false,
                    vec![],
                    q,
                ),
                class(
                    w_ds_periodic,
                    true,
                    Some(periodic_v4_jittered(400, 0.5)),
                    Some(stable_v6_maint(14, 350.0)),
                    false,
                    cpe_mix_mostly_zero(),
                    q,
                ),
            ];
            if w_ds_stable > 0.0 {
                classes.push(class(
                    w_ds_stable,
                    true,
                    Some(sticky_v4(96)),
                    Some(stable_v6_maint(21, 350.0)),
                    false,
                    cpe_mix_mostly_zero(),
                    q,
                ));
            }
            classes
        },
        stabilization: vec![],
        subscribers,
    }
}

fn periodic_v4_jittered(hours: u64, jitter: f64) -> V4Policy {
    V4Policy::PeriodicRenumber {
        period_hours: hours,
        jitter,
    }
}

/// BT (AS2856). 2-week IPv4 renumbering; stable /56 delegations; bimodal
/// CPL structure (regions at /44 inside /28 metros).
pub fn bt(subscribers: u32, era: Era) -> IspConfig {
    let q = OutageConfig::quiet();
    let (w_nds, w_ds_periodic, w_ds_stable) = match era {
        Era::Atlas => (0.66, 0.17, 0.17),
        Era::Cdn => (0.04, 0.12, 0.84),
    };
    IspConfig {
        asn: Asn(2856),
        name: "BT".into(),
        country: "U.K.".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("81.128.0.0/13", 0.65),
                ("86.128.0.0/14", 0.25),
                ("109.144.0.0/15", 0.10),
            ],
            0.06,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a00:2380::/25")],
            region_len: 44,
            delegated_len: 56,
            regions_per_aggregate: 8,
            p_stay_region: 0.94,
        }),
        classes: vec![
            class(w_nds, false, Some(periodic_v4(336)), None, false, vec![], q),
            class(
                w_ds_periodic,
                true,
                Some(periodic_v4(336)),
                Some(stable_v6(21)),
                false,
                cpe_mix_mostly_zero(),
                q,
            ),
            class(
                w_ds_stable,
                true,
                Some(sticky_v4(168)),
                Some(stable_v6(21)),
                false,
                cpe_mix_mostly_zero(),
                q,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// Proximus (AS5432). 1.5-day IPv4 renumbering; a share of dual-stack lines
/// renumber the delegation on the same cadence.
pub(crate) fn proximus(subscribers: u32, era: Era) -> IspConfig {
    let q = OutageConfig::quiet();
    let (w_nds, w_ds_coupled, w_ds_stable) = match era {
        Era::Atlas => (0.44, 0.22, 0.34),
        Era::Cdn => (0.04, 0.03, 0.93),
    };
    IspConfig {
        asn: Asn(5432),
        name: "Proximus".into(),
        country: "Belgium".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("87.64.0.0/13", 0.5),
                ("91.176.0.0/13", 0.3),
                ("178.116.0.0/14", 0.2),
            ],
            0.13,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a02:a000::/21")],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 6,
            p_stay_region: 0.999,
        }),
        classes: vec![
            class(w_nds, false, Some(periodic_v4(36)), None, false, vec![], q),
            class(
                w_ds_coupled,
                true,
                Some(periodic_v4(36)),
                Some(periodic_v6(36)),
                true,
                cpe_mix_mostly_zero(),
                q,
            ),
            class(
                w_ds_stable,
                true,
                Some(sticky_v4(48)),
                Some(stable_v6(21)),
                false,
                cpe_mix_mostly_zero(),
                q,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// Versatel (AS8881). 24-hour renumbering on both families, coupled.
pub(crate) fn versatel(subscribers: u32, era: Era) -> IspConfig {
    let rotate = match era {
        Era::Atlas => Some(24),
        Era::Cdn => None,
    };
    let cpe = vec![
        (0.55, CpeV6Behavior::ZeroOut),
        (
            0.35,
            CpeV6Behavior::Scramble {
                rotate_every_hours: rotate,
            },
        ),
        (0.10, CpeV6Behavior::ConstantNonZero),
    ];
    let q = OutageConfig::quiet();
    let (w_nds, w_ds, w_ds_stable) = match era {
        Era::Atlas => (0.29, 0.71, 0.0),
        Era::Cdn => (0.04, 0.10, 0.86),
    };
    let mut classes = vec![
        class(w_nds, false, Some(periodic_v4(24)), None, false, vec![], q),
        class(
            w_ds,
            true,
            Some(periodic_v4(24)),
            Some(periodic_v6(24)),
            true,
            cpe.clone(),
            q,
        ),
    ];
    if w_ds_stable > 0.0 {
        classes.push(class(
            w_ds_stable,
            true,
            Some(sticky_v4(24)),
            Some(stable_v6(14)),
            false,
            cpe,
            q,
        ));
    }
    IspConfig {
        asn: Asn(8881),
        name: "Versatel".into(),
        country: "Germany".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("89.244.0.0/14", 0.55),
                ("62.214.0.0/15", 0.30),
                ("212.7.128.0/17", 0.15),
            ],
            0.074,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2001:16b8::/32")],
            region_len: 44,
            delegated_len: 56,
            regions_per_aggregate: 4,
            p_stay_region: 0.99,
        }),
        classes,
        stabilization: vec![],
        subscribers,
    }
}

/// Netcologne (AS8422). 24-hour renumbering; delegates entire /48s to
/// individual subscribers (with drastic anonymization implications, as the
/// paper notes).
pub fn netcologne(subscribers: u32, era: Era) -> IspConfig {
    let cpe = vec![
        (0.90, CpeV6Behavior::ZeroOut),
        (
            0.05,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.05, CpeV6Behavior::ConstantNonZero),
    ];
    let q = OutageConfig::quiet();
    let (w_nds, w_ds, w_ds_stable) = match era {
        Era::Atlas => (0.07, 0.93, 0.0),
        Era::Cdn => (0.03, 0.10, 0.87),
    };
    let mut classes = vec![
        class(w_nds, false, Some(periodic_v4(24)), None, false, vec![], q),
        class(
            w_ds,
            true,
            Some(periodic_v4(24)),
            Some(periodic_v6(24)),
            true,
            cpe.clone(),
            q,
        ),
    ];
    if w_ds_stable > 0.0 {
        classes.push(class(
            w_ds_stable,
            true,
            Some(sticky_v4(48)),
            Some(stable_v6(14)),
            false,
            cpe,
            q,
        ));
    }
    IspConfig {
        asn: Asn(8422),
        name: "Netcologne".into(),
        country: "Germany".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("78.34.0.0/15", 0.60),
                ("89.0.0.0/16", 0.25),
                ("176.199.0.0/16", 0.15),
            ],
            0.01,
        )),
        v6_plan: Some(V6PoolPlan {
            // Regions must hold thousands of /48s: with daily renumbering a
            // small pool would re-issue recently-held delegations, which
            // both looks unrealistic and trips multihoming detection.
            aggregates: vec![v6p("2001:4dd0::/31"), v6p("2001:4dd2::/31")],
            region_len: 36,
            delegated_len: 48,
            regions_per_aggregate: 8,
            p_stay_region: 0.88,
        }),
        classes,
        stabilization: vec![],
        subscribers,
    }
}

/// Free SAS (AS12322). Sticky addressing with occasional outage-driven
/// changes; notable share of IPv6 changes cross BGP prefixes (42%).
pub(crate) fn free_sas(subscribers: u32, era: Era) -> IspConfig {
    let cpe = vec![
        (0.85, CpeV6Behavior::ZeroOut),
        (
            0.05,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.10, CpeV6Behavior::ConstantNonZero),
    ];
    let outages = OutageConfig {
        cpe_outage_mean_interval_hours: 70.0 * 24.0,
        cpe_outage_mean_duration_hours: 1.5,
        long_outage_mean_interval_hours: 250.0 * 24.0,
        long_outage_mean_duration_hours: 9.0 * 24.0,
        infra_outage_mean_interval_hours: 600.0 * 24.0,
        admin_renumber_mean_interval_hours: 1400.0 * 24.0,
    };
    let w_nds = match era {
        Era::Atlas => 0.35,
        Era::Cdn => 0.04,
    };
    IspConfig {
        asn: Asn(12322),
        name: "Free SAS".into(),
        country: "France".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("82.224.0.0/14", 0.40),
                ("88.160.0.0/14", 0.25),
                ("78.192.0.0/14", 0.20),
                ("37.160.0.0/15", 0.15),
            ],
            0.0,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a01:e000::/27"), v6p("2a01:e200::/27")],
            region_len: 40,
            delegated_len: 60,
            regions_per_aggregate: 4,
            p_stay_region: 0.05,
        }),
        classes: vec![
            class(
                w_nds,
                false,
                Some(sticky_v4(168)),
                None,
                false,
                vec![],
                outages,
            ),
            class(
                1.0 - w_nds,
                true,
                Some(sticky_v4(168)),
                Some(stable_v6(10)),
                false,
                cpe,
                outages,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// Vodafone Kabel Deutschland (AS31334). Stable dual-stack; branded CPEs
/// request /62 delegations.
pub fn kabel_de(subscribers: u32, era: Era) -> IspConfig {
    let cpe = vec![
        (0.80, CpeV6Behavior::ZeroOut),
        (
            0.10,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (0.10, CpeV6Behavior::ConstantNonZero),
    ];
    let q = OutageConfig::quiet();
    let w_nds = match era {
        Era::Atlas => 0.45,
        Era::Cdn => 0.04,
    };
    IspConfig {
        asn: Asn(31334),
        name: "Kabel DE".into(),
        country: "Germany".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[
                ("95.112.0.0/13", 0.40),
                ("188.192.0.0/14", 0.25),
                ("77.20.0.0/14", 0.20),
                ("109.192.0.0/15", 0.15),
            ],
            0.17,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a02:810::/32"), v6p("2a02:811::/32")],
            region_len: 44,
            delegated_len: 62,
            regions_per_aggregate: 4,
            p_stay_region: 0.90,
        }),
        classes: vec![
            class(
                w_nds,
                false,
                Some(periodic_v4_jittered(720, 0.5)),
                None,
                false,
                vec![],
                q,
            ),
            class(
                1.0 - w_nds,
                true,
                Some(sticky_v4(96)),
                Some(stable_v6(20)),
                false,
                cpe,
                q,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// Sky UK (AS5607). Stable addressing; verified /56 delegations.
pub(crate) fn sky_uk(subscribers: u32, era: Era) -> IspConfig {
    let q = OutageConfig::quiet();
    let w_nds = match era {
        Era::Atlas => 0.20,
        Era::Cdn => 0.03,
    };
    IspConfig {
        asn: Asn(5607),
        name: "Sky U.K.".into(),
        country: "U.K.".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(
            &[("90.192.0.0/13", 0.7), ("2.216.0.0/14", 0.3)],
            0.05,
        )),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p("2a02:c7c::/32")],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 4,
            p_stay_region: 0.99,
        }),
        classes: vec![
            class(w_nds, false, Some(sticky_v4(168)), None, false, vec![], q),
            class(
                1.0 - w_nds,
                true,
                Some(sticky_v4(168)),
                Some(stable_v6(30)),
                false,
                vec![
                    (0.92, CpeV6Behavior::ZeroOut),
                    (
                        0.04,
                        CpeV6Behavior::Scramble {
                            rotate_every_hours: None,
                        },
                    ),
                    (0.04, CpeV6Behavior::ConstantNonZero),
                ],
                q,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

// ---------------------------------------------------------------------------
// additional periodic-renumbering ASes named in Section 3.2
// ---------------------------------------------------------------------------

/// A small fixed-line ISP with coupled periodic renumbering on both
/// families — the template for Telefonica DE / M-net / ANTEL / Global
/// Village, which the paper names as periodic IPv6 renumberers.
#[allow(clippy::too_many_arguments)]
fn small_periodic_isp(
    asn: u32,
    name: &str,
    country: &str,
    rir: Rir,
    v4_pool: &str,
    v6_agg: &str,
    period_hours: u64,
    delegated_len: u8,
    subscribers: u32,
) -> IspConfig {
    let q = OutageConfig::quiet();
    IspConfig {
        asn: Asn(asn),
        name: name.into(),
        country: country.into(),
        rir,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(&[(v4_pool, 1.0)], 0.05)),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p(v6_agg)],
            region_len: 40.max(delegated_len.saturating_sub(16)),
            delegated_len,
            regions_per_aggregate: 4,
            p_stay_region: 0.995,
        }),
        classes: vec![
            class(
                0.3,
                false,
                Some(periodic_v4(period_hours)),
                None,
                false,
                vec![],
                q,
            ),
            class(
                0.7,
                true,
                Some(periodic_v4(period_hours)),
                Some(periodic_v6(period_hours)),
                true,
                cpe_mix_mostly_zero(),
                q,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

/// A stable US-style fixed ISP (Charter/Cox/AT&T/TimeWarner template): the
/// paper finds these have assignment durations similar to Comcast.
fn us_stable_isp(
    asn: u32,
    name: &str,
    v4_pool: &str,
    v6_agg: &str,
    delegated_len: u8,
    subscribers: u32,
) -> IspConfig {
    let outages = OutageConfig {
        cpe_outage_mean_interval_hours: 70.0 * 24.0,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: 260.0 * 24.0,
        long_outage_mean_duration_hours: 6.0 * 24.0,
        infra_outage_mean_interval_hours: 550.0 * 24.0,
        admin_renumber_mean_interval_hours: 1300.0 * 24.0,
    };
    IspConfig {
        asn: Asn(asn),
        name: name.into(),
        country: "U.S.".into(),
        rir: Rir::Arin,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(&[(v4_pool, 1.0)], 0.45)),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p(v6_agg)],
            region_len: 40,
            delegated_len,
            regions_per_aggregate: 4,
            p_stay_region: 0.97,
        }),
        classes: vec![
            class(
                0.3,
                false,
                Some(sticky_v4(96)),
                None,
                false,
                vec![],
                outages,
            ),
            class(
                0.7,
                true,
                Some(sticky_v4(96)),
                Some(stable_v6(14)),
                false,
                cpe_mix_mostly_zero(),
                outages,
            ),
        ],
        stabilization: vec![],
        subscribers,
    }
}

// ---------------------------------------------------------------------------
// cellular operators (CDN world)
// ---------------------------------------------------------------------------

/// A cellular operator: CGNAT'd IPv4, session-scoped /64 delegations with
/// a heavy-tailed session-lifetime distribution. The paper finds 75% of
/// mobile associations last ≤ 1 day with a tail to ~30 days; the EE-like
/// outlier in RIPE reaches ~50 days.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mobile_isp(
    asn: u32,
    name: &str,
    country: &str,
    rir: Rir,
    cgnat_pool: &str,
    v6_agg: &str,
    mean_session_hours: f64,
    tail_max_days: f64,
    tail_prob: f64,
    subscribers: u32,
) -> IspConfig {
    let q = OutageConfig::none(); // session churn dominates; outages are noise
    IspConfig {
        asn: Asn(asn),
        name: name.into(),
        country: country.into(),
        rir,
        access: AccessType::Cellular,
        v4_plan: Some(V4PoolPlan {
            pools: vec![(v4p(cgnat_pool), 1.0)],
            announcements: Vec::new(),
            p_near: 0.0,
            near_radius: 0,
        }),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p(v6_agg)],
            region_len: 44,
            delegated_len: 64,
            regions_per_aggregate: 4,
            p_stay_region: 0.9,
        }),
        classes: vec![class(
            1.0,
            true,
            Some(V4Policy::CgnatShared {
                rebind_prob: 0.5,
                check_interval_hours: 24.0,
            }),
            Some(V6Policy::SessionBased {
                mean_session_hours,
                tail_prob,
                tail_max_hours: tail_max_days * 24.0,
            }),
            true,
            // Devices use the /64 as-is; no CPE bit games on cellular.
            vec![(1.0, CpeV6Behavior::ZeroOut)],
            q,
        )],
        stabilization: vec![],
        subscribers,
    }
}

// ---------------------------------------------------------------------------
// per-RIR background fixed ISPs (CDN world, Figures 3 and 7)
// ---------------------------------------------------------------------------

/// A generic stable fixed-line ISP used to populate registries in the CDN
/// world. `delegated_len` and the CPE mix control the Figure-7 trailing-zero
/// signature; `change_interval_days` controls Figure-3 association durations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn background_fixed_isp(
    asn: u32,
    name: &str,
    rir: Rir,
    v4_pool: &str,
    v6_agg: &str,
    delegated_len: u8,
    zero_out_frac: f64,
    change_interval_days: f64,
    subscribers: u32,
) -> IspConfig {
    let rest = (1.0 - zero_out_frac).max(0.0);
    let cpe = vec![
        (zero_out_frac.max(0.001), CpeV6Behavior::ZeroOut),
        (
            rest * 0.6 + 0.001,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        (rest * 0.4 + 0.001, CpeV6Behavior::ConstantNonZero),
    ];
    // Long outages drive the changes: both families renumber when the lease
    // is outlived, which makes association durations track
    // `change_interval_days`.
    let outages = OutageConfig {
        cpe_outage_mean_interval_hours: 80.0 * 24.0,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: change_interval_days * 24.0,
        long_outage_mean_duration_hours: 36.0,
        infra_outage_mean_interval_hours: 600.0 * 24.0,
        admin_renumber_mean_interval_hours: 1500.0 * 24.0,
    };
    IspConfig {
        asn: Asn(asn),
        name: name.into(),
        country: rir.label().into(),
        rir,
        access: AccessType::FixedLine,
        v4_plan: Some(pools(&[(v4_pool, 1.0)], 0.3)),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec![v6p(v6_agg)],
            region_len: 40.max(delegated_len.saturating_sub(16)),
            delegated_len,
            regions_per_aggregate: 4,
            p_stay_region: 0.97,
        }),
        classes: vec![class(
            1.0,
            true,
            Some(sticky_v4(24)),
            Some(stable_v6(1)),
            false,
            cpe,
            outages,
        )],
        stabilization: vec![],
        subscribers,
    }
}

/// Shrink an ISP's IPv4 pools so the simulated subscriber population fills
/// them at realistic density (~70% of a /24's addresses active, matching
/// Richter et al.'s measurement the paper leans on for Figure 4). The
/// simulated subscribers stand for a contiguous slice of the real ISP, so
/// each pool is replaced by its lowest sub-block of the appropriate size;
/// announcements keep covering the shrunk pools. Only used for the CDN-era
/// world — Atlas-side analyses never look at per-/24 density.
pub(crate) fn densify_v4(mut cfg: IspConfig) -> IspConfig {
    const TARGET_OCCUPANCY: f64 = 0.7;
    if let Some(plan) = &mut cfg.v4_plan {
        if plan.announcements.is_empty() {
            // Keep announcing the original (large) blocks.
            plan.announcements = plan.pools.iter().map(|(p, _)| *p).collect();
        }
        let total_w: f64 = plan.pools.iter().map(|(_, w)| *w).sum();
        for (pool, w) in plan.pools.iter_mut() {
            let share = cfg.subscribers as f64 * (*w / total_w);
            let want = (share / TARGET_OCCUPANCY).max(256.0);
            let bits = (want.log2().ceil() as u8).clamp(8, 32 - pool.len());
            let new_len = 32 - bits;
            if new_len > pool.len() {
                *pool = pool
                    .nth_subprefix(new_len, 0)
                    .expect("sub-block of own pool");
            }
        }
    }
    cfg
}

// ---------------------------------------------------------------------------
// world assembly
// ---------------------------------------------------------------------------

/// Table-1 probe counts (the "All probes" column).
#[cfg(test)]
pub(crate) const ATLAS_PROBE_COUNTS: [(&str, u32); 11] = [
    ("DTAG", 589),
    ("Comcast", 415),
    ("Orange", 425),
    ("LGI", 445),
    ("Free SAS", 138),
    ("Kabel DE", 152),
    ("Proximus", 114),
    ("Versatel", 80),
    ("BT", 170),
    ("Netcologne", 43),
    ("Sky U.K.", 45),
];

/// The RIPE-Atlas-era world: the eleven named ASes at their Table-1 probe
/// counts (scaled by `scale`), plus the additional periodic renumberers of
/// Section 3.2 and a set of stable US ISPs.
pub fn atlas_world(seed: u64, scale: f64) -> World {
    let n = |base: u32| ((base as f64 * scale).round() as u32).max(2);
    let mut world = World::new(seed);
    world.add_isp(dtag(n(589), Era::Atlas));
    world.add_isp(comcast(n(415), Era::Atlas));
    world.add_isp(orange(n(425), Era::Atlas));
    world.add_isp(lgi(n(445), Era::Atlas));
    world.add_isp(free_sas(n(138), Era::Atlas));
    world.add_isp(kabel_de(n(152), Era::Atlas));
    world.add_isp(proximus(n(114), Era::Atlas));
    world.add_isp(versatel(n(80), Era::Atlas));
    world.add_isp(bt(n(170), Era::Atlas));
    world.add_isp(netcologne(n(43), Era::Atlas));
    world.add_isp(sky_uk(n(45), Era::Atlas));
    // Other periodic renumberers called out in Section 3.2.
    world.add_isp(small_periodic_isp(
        6805,
        "Telefonica DE",
        "Germany",
        Rir::RipeNcc,
        "88.64.0.0/14",
        "2a02:3030::/28",
        24,
        56,
        n(30),
    ));
    world.add_isp(small_periodic_isp(
        8767,
        "M-net",
        "Germany",
        Rir::RipeNcc,
        "93.104.0.0/15",
        "2001:a60::/32",
        24,
        56,
        n(25),
    ));
    world.add_isp(small_periodic_isp(
        6057,
        "ANTEL",
        "Uruguay",
        Rir::Lacnic,
        "167.56.0.0/14",
        "2800:a0::/28",
        12,
        56,
        n(25),
    ));
    world.add_isp(small_periodic_isp(
        18881,
        "Global Village",
        "Brazil",
        Rir::Lacnic,
        "177.140.0.0/14",
        "2804:14c::/31",
        48,
        56,
        n(25),
    ));
    // Additional periodic renumberers (anonymized stand-ins for the rest of
    // the paper's 35 networks with consistent periodic renumbering).
    for (asn, name, country, rir, v4, v6, period) in [
        (
            64710u32,
            "EU-Periodic-A",
            "Germany",
            Rir::RipeNcc,
            "91.192.0.0/15",
            "2a07:1000::/32",
            24u64,
        ),
        (
            64711,
            "EU-Periodic-B",
            "Austria",
            Rir::RipeNcc,
            "91.194.0.0/15",
            "2a07:2000::/32",
            24,
        ),
        (
            64712,
            "EU-Periodic-C",
            "Switzerland",
            Rir::RipeNcc,
            "91.196.0.0/15",
            "2a07:3000::/32",
            36,
        ),
        (
            64713,
            "EU-Periodic-D",
            "Italy",
            Rir::RipeNcc,
            "91.198.0.0/15",
            "2a07:4000::/32",
            48,
        ),
        (
            64714,
            "EU-Periodic-E",
            "Spain",
            Rir::RipeNcc,
            "91.200.0.0/15",
            "2a07:5000::/32",
            72,
        ),
        (
            64715,
            "EU-Periodic-F",
            "Poland",
            Rir::RipeNcc,
            "91.202.0.0/15",
            "2a07:6000::/32",
            168,
        ),
        (
            64716,
            "AP-Periodic-A",
            "Japan",
            Rir::Apnic,
            "126.160.0.0/15",
            "240d:1000::/32",
            336,
        ),
        (
            64717,
            "AP-Periodic-B",
            "Korea",
            Rir::Apnic,
            "126.162.0.0/15",
            "240d:2000::/32",
            24,
        ),
    ] {
        world.add_isp(small_periodic_isp(
            asn,
            name,
            country,
            rir,
            v4,
            v6,
            period,
            56,
            n(22),
        ));
    }
    // Stable US operators with Comcast-like durations.
    world.add_isp(us_stable_isp(
        20115,
        "Charter",
        "66.168.0.0/14",
        "2600:6c00::/26",
        56,
        n(35),
    ));
    world.add_isp(us_stable_isp(
        22773,
        "Cox",
        "68.96.0.0/14",
        "2600:8800::/26",
        56,
        n(30),
    ));
    world.add_isp(us_stable_isp(
        7018,
        "AT&T",
        "99.0.0.0/14",
        "2600:1700::/26",
        60,
        n(35),
    ));
    world.add_isp(us_stable_isp(
        20001,
        "TimeWarner",
        "66.74.0.0/15",
        "2603:8000::/26",
        56,
        n(30),
    ));
    world
}

/// The CDN-era world: late-era mixes of the named ASes, per-RIR background
/// fixed populations (tuned to the Figure-7 trailing-zero signatures and
/// Figure-3 durations), and cellular operators in every registry.
pub fn cdn_world(seed: u64, scale: f64) -> World {
    let n = |base: u32| ((base as f64 * scale).round() as u32).max(4);
    let mut world = World::new(seed);
    // Named fixed ASes.
    world.add_isp(densify_v4(dtag(n(2500), Era::Cdn)));
    world.add_isp(densify_v4(comcast(n(2500), Era::Cdn)));
    world.add_isp(densify_v4(orange(n(2500), Era::Cdn)));
    world.add_isp(densify_v4(lgi(n(2000), Era::Cdn)));
    world.add_isp(densify_v4(free_sas(n(1500), Era::Cdn)));
    world.add_isp(densify_v4(kabel_de(n(1500), Era::Cdn)));
    world.add_isp(densify_v4(proximus(n(1200), Era::Cdn)));
    world.add_isp(densify_v4(versatel(n(400), Era::Cdn)));
    world.add_isp(densify_v4(bt(n(2000), Era::Cdn)));
    world.add_isp(densify_v4(netcologne(n(300), Era::Cdn)));
    world.add_isp(densify_v4(sky_uk(n(1500), Era::Cdn)));

    // ARIN: very long fixed durations (median near the whole window);
    // 30% /60 + 27% /56 inferable (plus Comcast's /60s).
    world.add_isp(densify_v4(background_fixed_isp(
        64600,
        "ARIN-Fiber",
        Rir::Arin,
        "63.224.0.0/14",
        "2600:4000::/26",
        60,
        0.93,
        500.0,
        n(3200),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64601,
        "ARIN-Cable",
        Rir::Arin,
        "70.160.0.0/14",
        "2610:100::/28",
        56,
        0.92,
        480.0,
        n(3000),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64602,
        "ARIN-DSL",
        Rir::Arin,
        "74.32.0.0/14",
        "2620:200::/28",
        64,
        0.0,
        460.0,
        n(4300),
    )));

    // RIPE background: heavy /56 usage (>60% of /64s with 8 trailing zeros).
    world.add_isp(densify_v4(background_fixed_isp(
        64610,
        "RIPE-Fiber",
        Rir::RipeNcc,
        "77.128.0.0/14",
        "2a03:4000::/26",
        56,
        0.95,
        250.0,
        n(6000),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64611,
        "RIPE-DSL",
        Rir::RipeNcc,
        "93.192.0.0/14",
        "2a05:1000::/28",
        56,
        0.9,
        170.0,
        n(2700),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64612,
        "RIPE-Cable",
        Rir::RipeNcc,
        "95.32.0.0/14",
        "2a0a:2000::/28",
        64,
        0.0,
        210.0,
        n(350),
    )));

    // APNIC: mixed; includes a Japanese-style /48 delegator.
    world.add_isp(densify_v4(background_fixed_isp(
        64620,
        "APNIC-Fiber",
        Rir::Apnic,
        "111.64.0.0/14",
        "2400:4000::/26",
        56,
        0.9,
        280.0,
        n(2900),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64621,
        "APNIC-NTT",
        Rir::Apnic,
        "118.0.0.0/14",
        "2408:200::/28",
        48,
        0.85,
        300.0,
        n(1100),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64622,
        "APNIC-DSL",
        Rir::Apnic,
        "119.224.0.0/14",
        "240e:400::/28",
        64,
        0.0,
        230.0,
        n(2400),
    )));

    // LACNIC: mostly /64 (only ~15% inferable).
    world.add_isp(densify_v4(background_fixed_isp(
        64630,
        "LACNIC-Cable",
        Rir::Lacnic,
        "179.0.0.0/14",
        "2800:4000::/26",
        64,
        0.0,
        190.0,
        n(3800),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64631,
        "LACNIC-Fiber",
        Rir::Lacnic,
        "186.0.0.0/14",
        "2803:800::/28",
        60,
        0.55,
        210.0,
        n(900),
    )));

    // AFRINIC: strong /56 signature (83% inferable).
    world.add_isp(densify_v4(background_fixed_isp(
        64640,
        "AFRINIC-Fiber",
        Rir::Afrinic,
        "41.64.0.0/14",
        "2c0f:4000::/26",
        56,
        0.95,
        240.0,
        n(3400),
    )));
    world.add_isp(densify_v4(background_fixed_isp(
        64641,
        "AFRINIC-DSL",
        Rir::Afrinic,
        "105.160.0.0/14",
        "2c0f:f000::/28",
        64,
        0.0,
        200.0,
        n(550),
    )));

    // Cellular operators. 65.7% of unique /64s in the paper's CDN dataset
    // come from cellular access; subscriber counts are weighted accordingly.
    world.add_isp(mobile_isp(
        21928,
        "ARIN-Mobile",
        "U.S.",
        Rir::Arin,
        "172.32.6.0/23",
        "2607:fb90::/28",
        6.0,
        30.0,
        0.035,
        n(820),
    ));
    world.add_isp(mobile_isp(
        12576,
        "EE Ltd.",
        "U.K.",
        Rir::RipeNcc,
        "92.40.2.0/23",
        "2a01:4c80::/28",
        480.0,
        50.0,
        0.0,
        n(3000),
    ));
    world.add_isp(mobile_isp(
        64651,
        "RIPE-Mobile",
        "many",
        Rir::RipeNcc,
        "79.64.8.0/23",
        "2a02:3000::/28",
        6.0,
        30.0,
        0.035,
        n(150),
    ));
    world.add_isp(mobile_isp(
        9808,
        "APNIC-Mobile",
        "China",
        Rir::Apnic,
        "120.192.4.0/23",
        "2409:8000::/28",
        6.0,
        28.0,
        0.03,
        n(850),
    ));
    world.add_isp(mobile_isp(
        64661,
        "LACNIC-Mobile",
        "Brazil",
        Rir::Lacnic,
        "187.0.6.0/23",
        "2805:4000::/28",
        6.0,
        28.0,
        0.03,
        n(790),
    ));
    world.add_isp(mobile_isp(
        64662,
        "AFRINIC-Mobile",
        "Nigeria",
        Rir::Afrinic,
        "102.88.2.0/23",
        "2c0f:e000::/28",
        6.0,
        28.0,
        0.03,
        n(760),
    ));
    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_profiles_validate() {
        for era in [Era::Atlas, Era::Cdn] {
            for cfg in [
                dtag(100, era),
                orange(100, era),
                comcast(100, era),
                lgi(100, era),
                bt(100, era),
                proximus(100, era),
                versatel(100, era),
                netcologne(100, era),
                free_sas(100, era),
                kabel_de(100, era),
                sky_uk(100, era),
            ] {
                cfg.validate().unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn atlas_world_builds_and_validates() {
        let world = atlas_world(1, 0.1);
        assert!(world.isps().len() >= 15);
        for isp in world.isps() {
            isp.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        // Routing covers DTAG space.
        let asn = world
            .routing()
            .origin_v6("2003:40:a0::1".parse().unwrap())
            .unwrap();
        assert_eq!(asn, Asn(3320));
    }

    #[test]
    fn cdn_world_has_all_rirs_and_mobile() {
        let world = cdn_world(1, 0.02);
        for isp in world.isps() {
            isp.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        for rir in Rir::ALL {
            assert!(
                world
                    .isps()
                    .iter()
                    .any(|i| i.rir == rir && i.access == AccessType::FixedLine),
                "missing fixed ISP in {rir}"
            );
            assert!(
                world
                    .isps()
                    .iter()
                    .any(|i| i.rir == rir && i.access == AccessType::Cellular),
                "missing mobile ISP in {rir}"
            );
        }
    }

    #[test]
    fn delegation_lengths_match_paper_verified_values() {
        // The paper verified these against operator documentation.
        assert_eq!(dtag(10, Era::Atlas).v6_plan.unwrap().delegated_len, 56);
        assert_eq!(orange(10, Era::Atlas).v6_plan.unwrap().delegated_len, 56);
        assert_eq!(sky_uk(10, Era::Atlas).v6_plan.unwrap().delegated_len, 56);
        assert_eq!(kabel_de(10, Era::Atlas).v6_plan.unwrap().delegated_len, 62);
        assert_eq!(
            netcologne(10, Era::Atlas).v6_plan.unwrap().delegated_len,
            48
        );
    }

    #[test]
    fn probe_counts_match_table_1() {
        let counts: std::collections::HashMap<_, _> = ATLAS_PROBE_COUNTS.iter().cloned().collect();
        assert_eq!(counts["DTAG"], 589);
        assert_eq!(counts["Netcologne"], 43);
        assert_eq!(counts.len(), 11);
    }

    #[test]
    fn no_duplicate_asns_in_worlds() {
        for world in [atlas_world(1, 0.05), cdn_world(1, 0.02)] {
            let mut asns: Vec<u32> = world.isps().iter().map(|i| i.asn.0).collect();
            let before = asns.len();
            asns.sort_unstable();
            asns.dedup();
            assert_eq!(asns.len(), before, "duplicate ASN in world");
        }
    }

    #[test]
    fn no_overlapping_v6_aggregates_across_isps() {
        for world in [atlas_world(1, 0.05), cdn_world(1, 0.02)] {
            let mut aggs: Vec<(dynamips_netaddr::Ipv6Prefix, u32)> = Vec::new();
            for isp in world.isps() {
                if let Some(plan) = &isp.v6_plan {
                    for a in &plan.aggregates {
                        for (other, other_asn) in &aggs {
                            assert!(
                                !a.contains_prefix(other) && !other.contains_prefix(a),
                                "{a} ({}) overlaps {other} (AS{other_asn})",
                                isp.asn
                            );
                        }
                        aggs.push((*a, isp.asn.0));
                    }
                }
            }
        }
    }
}
