//! Protocol-level DHCP lease and DHCPv6 prefix-delegation state machines.
//!
//! The paper's Section 2.2 grounds every temporal finding in the DHCP
//! (RFC 2131) and DHCPv6-PD (RFC 3633/8415) lifecycles: leases with renewal
//! (T1) and rebinding (T2) timers, delegations with preferred/valid
//! lifetimes, and servers that do or do not retain binding state. This
//! module models those lifecycles at the simulation's hour resolution; the
//! simulator consults it for outage-survival decisions, and it is exposed
//! publicly so applications can reason about lease timelines directly.

use crate::time::SimTime;

/// Phase of an RFC 2131 client lease at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): doctest-facing; the doc example on LeaseState is an
// external caller this scan cannot see.
pub enum LeasePhase {
    /// Before T1: the client uses the address without talking to the
    /// server.
    Bound,
    /// Between T1 and T2: the client unicasts RENEW requests to the server
    /// that granted the lease.
    Renewing,
    /// Between T2 and expiry: the client broadcasts REBIND requests to any
    /// server.
    Rebinding,
    /// Past the valid lifetime: the address must not be used.
    Expired,
}

/// One granted DHCPv4 lease, timed from its last (re)acknowledgement.
///
/// ```
/// use dynamips_netsim::dhcp::{LeasePhase, LeaseState};
/// use dynamips_netsim::SimTime;
///
/// let lease = LeaseState::granted(SimTime(0), 24);
/// assert_eq!(lease.phase_at(SimTime(10)), LeasePhase::Bound);
/// assert_eq!(lease.phase_at(SimTime(13)), LeasePhase::Renewing);
/// // A CPE offline for longer than the lease loses its address.
/// assert!(!lease.survives_outage(SimTime(100), SimTime(130)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): doctest-facing; the doc example above compiles
// against the public surface, which this scan cannot see.
pub struct LeaseState {
    /// When the lease was granted or last renewed.
    pub renewed_at: SimTime,
    /// Lease duration (the DHCP IP-address-lease-time option).
    pub lease_hours: u64,
}

impl LeaseState {
    /// Grant a fresh lease at `now`.
    // lint:allow(dead-pub): doctest-facing; called from the doc example above.
    pub fn granted(now: SimTime, lease_hours: u64) -> Self {
        LeaseState {
            renewed_at: now,
            lease_hours,
        }
    }

    /// T1, the renewal time: 0.5 × lease (RFC 2131 §4.4.5 default).
    pub fn t1(&self) -> SimTime {
        self.renewed_at + self.lease_hours / 2
    }

    /// T2, the rebinding time: 0.875 × lease.
    pub fn t2(&self) -> SimTime {
        self.renewed_at + self.lease_hours * 7 / 8
    }

    /// Lease expiry.
    pub(crate) fn expiry(&self) -> SimTime {
        self.renewed_at + self.lease_hours
    }

    /// Phase at time `t`.
    // lint:allow(dead-pub): doctest-facing; called from the doc example above.
    pub fn phase_at(&self, t: SimTime) -> LeasePhase {
        if t < self.t1() {
            LeasePhase::Bound
        } else if t < self.t2() {
            LeasePhase::Renewing
        } else if t < self.expiry() {
            LeasePhase::Rebinding
        } else {
            LeasePhase::Expired
        }
    }

    /// Renew at `t` (the server re-acknowledges): the timers restart. An
    /// online client renews at every T1, so its lease never expires.
    // lint:allow(dead-pub): part of the documented lease API; exercised by
    // this crate's tests.
    pub fn renew(&mut self, t: SimTime) {
        debug_assert!(t >= self.renewed_at);
        self.renewed_at = t;
    }

    /// Whether a client that went offline at `down` and returned at `up`
    /// still holds a valid lease on return. An online client renews at T1,
    /// so at the moment of failure the lease was at worst half-elapsed; we
    /// model the client as having renewed just before the outage (the
    /// simulator's CPEs renew opportunistically at every measurement-hour
    /// tick). Equivalently: the outage must outlast a full lease to lose
    /// the binding.
    // lint:allow(dead-pub): doctest-facing; called from the doc example above.
    pub fn survives_outage(&self, down: SimTime, up: SimTime) -> bool {
        let fresh = LeaseState::granted(down, self.lease_hours);
        up < fresh.expiry() || up == fresh.expiry()
    }
}

/// Phase of a DHCPv6 delegated prefix (IA_PD) at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): returned by DelegationState::phase_at; part of the
// documented lease API, exercised by this crate's tests.
pub enum DelegationPhase {
    /// Within the preferred lifetime: use freely.
    Preferred,
    /// Past preferred but within valid: existing communication may
    /// continue, no new use (RFC 8415 deprecated state).
    Deprecated,
    /// Past the valid lifetime: the prefix must be abandoned.
    Invalid,
}

/// One delegated prefix with RFC 8415 lifetimes, timed from its last
/// renewal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): the prefix-delegation counterpart of LeaseState,
// kept pub as part of the documented lease API.
pub struct DelegationState {
    /// When the delegation was granted or last renewed.
    pub renewed_at: SimTime,
    /// Preferred lifetime, hours.
    pub preferred_hours: u64,
    /// Valid lifetime, hours (≥ preferred).
    pub valid_hours: u64,
}

impl DelegationState {
    /// Grant a delegation at `now`. `valid_hours` is clamped to at least
    /// `preferred_hours`, as the RFC requires.
    pub(crate) fn granted(now: SimTime, preferred_hours: u64, valid_hours: u64) -> Self {
        DelegationState {
            renewed_at: now,
            preferred_hours,
            valid_hours: valid_hours.max(preferred_hours),
        }
    }

    /// Phase at time `t`.
    // lint:allow(dead-pub): part of the documented lease API; exercised by
    // this crate's tests.
    pub fn phase_at(&self, t: SimTime) -> DelegationPhase {
        let elapsed = t - self.renewed_at;
        if elapsed < self.preferred_hours {
            DelegationPhase::Preferred
        } else if elapsed < self.valid_hours {
            DelegationPhase::Deprecated
        } else {
            DelegationPhase::Invalid
        }
    }

    /// Whether a CPE offline during `[down, up)` still holds a valid
    /// delegation on return (same opportunistic-renewal assumption as
    /// [`LeaseState::survives_outage`]).
    pub(crate) fn survives_outage(&self, down: SimTime, up: SimTime) -> bool {
        up - down <= self.valid_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_timer_schedule() {
        let l = LeaseState::granted(SimTime(100), 24);
        assert_eq!(l.t1(), SimTime(112));
        assert_eq!(l.t2(), SimTime(121));
        assert_eq!(l.expiry(), SimTime(124));
    }

    #[test]
    fn lease_phases_in_order() {
        let l = LeaseState::granted(SimTime(0), 96);
        assert_eq!(l.phase_at(SimTime(0)), LeasePhase::Bound);
        assert_eq!(l.phase_at(SimTime(47)), LeasePhase::Bound);
        assert_eq!(l.phase_at(SimTime(48)), LeasePhase::Renewing);
        assert_eq!(l.phase_at(SimTime(83)), LeasePhase::Renewing);
        assert_eq!(l.phase_at(SimTime(84)), LeasePhase::Rebinding);
        assert_eq!(l.phase_at(SimTime(95)), LeasePhase::Rebinding);
        assert_eq!(l.phase_at(SimTime(96)), LeasePhase::Expired);
    }

    #[test]
    fn renewal_restarts_timers() {
        let mut l = LeaseState::granted(SimTime(0), 24);
        l.renew(SimTime(12));
        assert_eq!(l.phase_at(SimTime(20)), LeasePhase::Bound);
        assert_eq!(l.expiry(), SimTime(36));
    }

    #[test]
    fn online_client_never_expires() {
        // A client renewing at every T1 stays Bound/Renewing forever.
        let mut l = LeaseState::granted(SimTime(0), 24);
        for _ in 0..100 {
            let t1 = l.t1();
            assert_ne!(l.phase_at(t1), LeasePhase::Expired);
            l.renew(t1);
        }
        assert!(l.expiry().hours() > 100 * 12);
    }

    #[test]
    fn outage_survival_threshold() {
        let l = LeaseState::granted(SimTime(500), 48);
        assert!(l.survives_outage(SimTime(1000), SimTime(1048)));
        assert!(!l.survives_outage(SimTime(1000), SimTime(1049)));
    }

    #[test]
    fn delegation_phases() {
        let d = DelegationState::granted(SimTime(0), 24, 72);
        assert_eq!(d.phase_at(SimTime(10)), DelegationPhase::Preferred);
        assert_eq!(d.phase_at(SimTime(24)), DelegationPhase::Deprecated);
        assert_eq!(d.phase_at(SimTime(71)), DelegationPhase::Deprecated);
        assert_eq!(d.phase_at(SimTime(72)), DelegationPhase::Invalid);
    }

    #[test]
    fn delegation_valid_clamped_to_preferred() {
        let d = DelegationState::granted(SimTime(0), 48, 24);
        assert_eq!(d.valid_hours, 48);
    }

    #[test]
    fn delegation_outage_survival() {
        let d = DelegationState::granted(SimTime(0), 24, 14 * 24);
        assert!(d.survives_outage(SimTime(100), SimTime(100 + 14 * 24)));
        assert!(!d.survives_outage(SimTime(100), SimTime(101 + 14 * 24)));
    }
}
