//! Per-ISP policy configuration.
//!
//! Every cause of assignment change the paper enumerates in Section 2.2 —
//! periodic lease/session renumbering, CPE and infrastructure outages, and
//! administrative renumbering — appears here as an explicit knob, as do the
//! spatial-structure parameters (pool hierarchy, delegated prefix lengths,
//! CPE /64-selection behaviour) that drive the Section 5 analyses.

use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};
use dynamips_routing::{AccessType, Asn, Rir};

/// IPv4 assignment policy of an ISP (or of a class of its subscribers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V4Policy {
    /// DHCP with a persistent lease database: the CPE renews indefinitely
    /// and keeps its address across short outages. Changes only happen when
    /// an outage outlasts `lease_hours` (the server reclaims the lease) or
    /// through infrastructure events. Comcast-like.
    DhcpSticky {
        /// Lease duration granted to CPEs.
        lease_hours: u64,
    },
    /// RADIUS-style session addressing: the session ends every
    /// `period_hours` (the configured SessionTimeout) and the server hands
    /// out an arbitrary free address on reconnect. DTAG (24 h), Orange
    /// (1 week), BT (2 weeks)-like. Any CPE reboot also renumbers.
    PeriodicRenumber {
        /// Session timeout.
        period_hours: u64,
        /// Multiplicative jitter applied to each period (0.0 = exact).
        jitter: f64,
    },
    /// The subscriber sits behind carrier-grade NAT: its public IPv4 address
    /// is one of the operator's CGNAT gateway addresses, re-picked per
    /// attachment session. Cellular-operator-like.
    CgnatShared {
        /// Probability that a binding check (session start or periodic
        /// mapping timeout) moves the subscriber to a different gateway
        /// address (the paper infers a strong v6→v4 affinity: 87% of /64s
        /// associate with a single /24, so rebinds are the minority).
        rebind_prob: f64,
        /// Mean hours between mid-session CGNAT mapping checks. These are
        /// what let a long-lived /64 be seen behind more than one /24.
        check_interval_hours: f64,
    },
}

/// IPv6 delegation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V6Policy {
    /// Persistent delegation per RIPE-690 recommendations: changes only via
    /// outage-induced state loss, occasional server-side maintenance, or
    /// administrative renumbering.
    StableDelegation {
        /// Like a DHCP lease: outages longer than this lose the delegation.
        valid_lifetime_hours: u64,
        /// Mean hours between server-side delegation renumberings that are
        /// independent of the IPv4 side (pool maintenance). `f64::INFINITY`
        /// disables them. This is what makes v4 and v6 changes *not*
        /// co-occur on Comcast-like networks (Section 3.2).
        maintenance_mean_hours: f64,
    },
    /// Periodic renumbering of the delegated prefix (DTAG, Versatel,
    /// Netcologne: 24 h; ANTEL: 12 h; Global Village: 48 h).
    PeriodicRenumber {
        /// Renumbering period.
        period_hours: u64,
        /// Multiplicative jitter applied to each period.
        jitter: f64,
    },
    /// Session-scoped /64 assignment, cellular style: a new prefix per
    /// attachment session, with heavy-tailed session lifetimes.
    SessionBased {
        /// Mean of the (exponential) session-length body, hours.
        mean_session_hours: f64,
        /// Probability a session is drawn from the long tail instead.
        tail_prob: f64,
        /// Upper bound of the tail, hours.
        tail_max_hours: f64,
    },
}

/// How a CPE selects the /64 it announces on the home LAN out of its
/// delegated prefix (Section 5.3: this decides whether subscriber-boundary
/// inference via trailing zeros works).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpeV6Behavior {
    /// Announce the lowest-numbered /64: trailing network bits are zero, so
    /// the delegation boundary is inferable.
    ZeroOut,
    /// Scramble the available bits (a feature of many DTAG CPEs): a random
    /// sub-/64 is chosen per delegation and re-chosen on every reconnect,
    /// defeating boundary inference (inferred length collapses to /64).
    Scramble {
        /// If set, additionally rotate the announced /64 within the same
        /// delegation on this period, producing assignment changes with
        /// CPL ≥ delegated length.
        rotate_every_hours: Option<u64>,
    },
    /// Use a fixed, non-zero sub-/64 chosen once per CPE (e.g. a vendor that
    /// numbers LANs from 1). Overestimates the subscriber prefix length.
    ConstantNonZero,
}

/// Spatial layout of an ISP's IPv6 delegation space, producing the pool
/// structure of Section 5.2: subscribers draw delegations from a "local"
/// pool nested in a "region" pool nested in the ISP's BGP aggregate(s).
#[derive(Debug, Clone, PartialEq)]
pub struct V6PoolPlan {
    /// BGP-announced aggregates (e.g. DTAG's `2003::/19`).
    pub aggregates: Vec<Ipv6Prefix>,
    /// Length of the regional pool (the paper finds /40 common).
    pub region_len: u8,
    /// Length of the delegated prefix (e.g. 56 for DTAG/Orange, 48 for
    /// Netcologne, 62 for Kabel DE branded CPEs, 64 for cellular).
    pub delegated_len: u8,
    /// Number of regional pools instantiated per aggregate.
    pub regions_per_aggregate: u32,
    /// Probability that a renumbering stays within the subscriber's current
    /// region (the remainder moves to a different region, producing the rare
    /// CPL < region_len changes).
    pub p_stay_region: f64,
}

impl V6PoolPlan {
    /// Basic sanity checks; called when an ISP sim is built.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.aggregates.is_empty() {
            return Err("no IPv6 aggregates".into());
        }
        for agg in &self.aggregates {
            if self.region_len < agg.len() {
                return Err(format!(
                    "region_len /{} shorter than aggregate {}",
                    self.region_len, agg
                ));
            }
        }
        if self.delegated_len < self.region_len || self.delegated_len > 64 {
            return Err(format!(
                "delegated_len /{} must be within [region_len /{}, 64]",
                self.delegated_len, self.region_len
            ));
        }
        if self.regions_per_aggregate == 0 {
            return Err("regions_per_aggregate must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.p_stay_region) {
            return Err("p_stay_region out of [0,1]".into());
        }
        Ok(())
    }
}

/// Spatial layout of an ISP's public IPv4 space: a set of pools, possibly
/// spread across multiple BGP announcements. Non-sticky reassignment picks a
/// pool by weight and then a free address — which is what makes consecutive
/// IPv4 assignments land in different /24s and different BGP prefixes
/// (Table 2) at the observed rates.
#[derive(Debug, Clone, PartialEq)]
pub struct V4PoolPlan {
    /// `(pool prefix, selection weight)`. Each pool lies inside exactly one
    /// announced BGP prefix (see [`V4PoolPlan::announcements`]).
    pub pools: Vec<(Ipv4Prefix, f64)>,
    /// BGP announcements covering the pools. Defaults to announcing each
    /// pool prefix itself if empty.
    pub announcements: Vec<Ipv4Prefix>,
    /// Probability that a non-sticky reassignment re-issues a *nearby*
    /// address in the same pool segment instead of drawing fresh (sequential
    /// DHCP allocators do this; it is what keeps a share of observed changes
    /// inside the same /24 — Table 2's "Diff /24" column).
    pub p_near: f64,
    /// Neighborhood radius (in addresses) of a near reassignment.
    pub near_radius: u64,
}

impl V4PoolPlan {
    /// Sanity checks.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.pools.is_empty() {
            return Err("no IPv4 pools".into());
        }
        if self.pools.iter().any(|(_, w)| *w <= 0.0) {
            return Err("non-positive pool weight".into());
        }
        if !(0.0..=1.0).contains(&self.p_near) {
            return Err("p_near out of [0,1]".into());
        }
        for (pool, _) in &self.pools {
            if !self.announcements.is_empty()
                && !self
                    .announcements
                    .iter()
                    .any(|ann| ann.contains_prefix(pool))
            {
                return Err(format!("pool {pool} not covered by any announcement"));
            }
        }
        Ok(())
    }

    /// The effective BGP announcements (pool prefixes themselves if no
    /// explicit aggregates were configured).
    pub(crate) fn effective_announcements(&self) -> Vec<Ipv4Prefix> {
        if self.announcements.is_empty() {
            self.pools.iter().map(|(p, _)| *p).collect()
        } else {
            self.announcements.clone()
        }
    }
}

/// Outage processes (Section 2.2 "Changes due to outages").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageConfig {
    /// Mean hours between short CPE outages/reboots (Poisson).
    pub cpe_outage_mean_interval_hours: f64,
    /// Mean duration of a short CPE outage, hours.
    pub cpe_outage_mean_duration_hours: f64,
    /// Mean hours between long subscriber outages (vacations, long power
    /// cuts) that outlast DHCP leases.
    pub long_outage_mean_interval_hours: f64,
    /// Mean duration of a long outage, hours.
    pub long_outage_mean_duration_hours: f64,
    /// Mean hours between region-wide infrastructure outages that lose
    /// server state and renumber everyone in the region.
    pub infra_outage_mean_interval_hours: f64,
    /// Mean hours between administrative renumbering events per region
    /// (restructuring, pool rebalancing); moves subscribers across regions.
    pub admin_renumber_mean_interval_hours: f64,
}

impl OutageConfig {
    /// A quiet residential profile: occasional reboots, rare long outages,
    /// infrastructure events every couple of years.
    pub fn quiet() -> Self {
        OutageConfig {
            cpe_outage_mean_interval_hours: 90.0 * 24.0,
            cpe_outage_mean_duration_hours: 1.0,
            long_outage_mean_interval_hours: 500.0 * 24.0,
            long_outage_mean_duration_hours: 5.0 * 24.0,
            infra_outage_mean_interval_hours: 700.0 * 24.0,
            admin_renumber_mean_interval_hours: 1500.0 * 24.0,
        }
    }

    /// No outages at all — useful for tests that isolate periodic policies.
    pub fn none() -> Self {
        OutageConfig {
            cpe_outage_mean_interval_hours: f64::INFINITY,
            cpe_outage_mean_duration_hours: 1.0,
            long_outage_mean_interval_hours: f64::INFINITY,
            long_outage_mean_duration_hours: 1.0,
            infra_outage_mean_interval_hours: f64::INFINITY,
            admin_renumber_mean_interval_hours: f64::INFINITY,
        }
    }
}

/// A class of subscribers within an ISP sharing the same policies. Real
/// networks mix classes — e.g. the paper finds *some* DTAG dual-stack probes
/// keep 24-hour renumbering while others hold addresses much longer — so an
/// ISP is configured as a weighted list of classes.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriberClass {
    /// Relative weight of this class in the subscriber population.
    pub weight: f64,
    /// Whether subscribers in this class are dual-stacked.
    pub dual_stack: bool,
    /// IPv4 policy (None = v6-only, rare but possible).
    pub v4: Option<V4Policy>,
    /// IPv6 policy (None = v4-only subscriber).
    pub v6: Option<V6Policy>,
    /// Whether v4 and v6 renumber together (DTAG-style, 90.6% observed
    /// simultaneity) or independently (Comcast-style).
    pub coupled: bool,
    /// CPE /64-selection behaviour mixture `(weight, behaviour)`.
    pub cpe_mix: Vec<(f64, CpeV6Behavior)>,
    /// Outage processes for this class.
    pub outages: OutageConfig,
}

/// A gradual policy migration: subscribers of one class individually
/// convert to another class at exponentially distributed times. This is how
/// the paper's "assignment durations ... have shown signs of increase over
/// the years, especially in ISPs such as DTAG and Orange" (Section 3.2)
/// arises mechanically: lines move from legacy periodic renumbering to
/// stable dual-stack provisioning as networks are upgraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stabilization {
    /// Class index subscribers convert *from*.
    pub from_class: usize,
    /// Class index they convert *to*.
    pub to_class: usize,
    /// Mean hours until an individual subscriber converts.
    pub mean_hours: f64,
}

/// Full configuration of one simulated ISP.
#[derive(Debug, Clone, PartialEq)]
pub struct IspConfig {
    /// Origin AS.
    pub asn: Asn,
    /// Operator name (as in the paper's Table 1).
    pub name: String,
    /// Country label.
    pub country: String,
    /// Delegating RIR.
    pub rir: Rir,
    /// Fixed-line or cellular.
    pub access: AccessType,
    /// IPv4 address-space layout (None = v6-only network).
    pub v4_plan: Option<V4PoolPlan>,
    /// IPv6 delegation-space layout (None = v4-only network).
    pub v6_plan: Option<V6PoolPlan>,
    /// Subscriber classes with weights.
    pub classes: Vec<SubscriberClass>,
    /// Gradual class migrations (policy evolution over the window).
    pub stabilization: Vec<Stabilization>,
    /// Number of subscribers to instantiate when this ISP is simulated.
    pub subscribers: u32,
}

impl IspConfig {
    /// Validate the configuration; returns a human-readable error.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err(format!("{}: no subscriber classes", self.name));
        }
        if self.subscribers == 0 {
            return Err(format!("{}: zero subscribers", self.name));
        }
        if let Some(plan) = &self.v4_plan {
            plan.validate().map_err(|e| format!("{}: {e}", self.name))?;
        }
        if let Some(plan) = &self.v6_plan {
            plan.validate().map_err(|e| format!("{}: {e}", self.name))?;
        }
        for (i, st) in self.stabilization.iter().enumerate() {
            if st.from_class >= self.classes.len() || st.to_class >= self.classes.len() {
                return Err(format!(
                    "{}: stabilization {i} references a missing class",
                    self.name
                ));
            }
            if st.mean_hours <= 0.0 || st.mean_hours.is_nan() {
                return Err(format!(
                    "{}: stabilization {i} needs a positive mean",
                    self.name
                ));
            }
            let target = &self.classes[st.to_class];
            if target.v6.is_some() && target.cpe_mix.is_empty() {
                return Err(format!(
                    "{}: stabilization {i} targets a v6 class without a CPE mix",
                    self.name
                ));
            }
        }
        for (i, class) in self.classes.iter().enumerate() {
            if class.weight <= 0.0 {
                return Err(format!("{}: class {i} has non-positive weight", self.name));
            }
            if class.v4.is_none() && class.v6.is_none() {
                return Err(format!("{}: class {i} has neither v4 nor v6", self.name));
            }
            if class.v4.is_some() && self.v4_plan.is_none() {
                return Err(format!("{}: class {i} uses v4 but no v4_plan", self.name));
            }
            if class.v6.is_some() && self.v6_plan.is_none() {
                return Err(format!("{}: class {i} uses v6 but no v6_plan", self.name));
            }
            if class.dual_stack && (class.v4.is_none() || class.v6.is_none()) {
                return Err(format!(
                    "{}: class {i} marked dual-stack without both policies",
                    self.name
                ));
            }
            if class.v6.is_some() && class.cpe_mix.is_empty() {
                return Err(format!(
                    "{}: class {i} uses v6 but empty cpe_mix",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v6_plan() -> V6PoolPlan {
        V6PoolPlan {
            aggregates: vec!["2003::/19".parse().unwrap()],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 8,
            p_stay_region: 0.98,
        }
    }

    fn v4_plan() -> V4PoolPlan {
        V4PoolPlan {
            pools: vec![
                ("84.128.0.0/12".parse().unwrap(), 0.7),
                ("91.0.0.0/13".parse().unwrap(), 0.3),
            ],
            announcements: vec![
                "84.128.0.0/10".parse().unwrap(),
                "91.0.0.0/10".parse().unwrap(),
            ],
            p_near: 0.05,
            near_radius: 256,
        }
    }

    fn class() -> SubscriberClass {
        SubscriberClass {
            weight: 1.0,
            dual_stack: true,
            v4: Some(V4Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            }),
            v6: Some(V6Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            }),
            coupled: true,
            cpe_mix: vec![(1.0, CpeV6Behavior::ZeroOut)],
            outages: OutageConfig::quiet(),
        }
    }

    fn config() -> IspConfig {
        IspConfig {
            asn: Asn(3320),
            name: "DTAG".into(),
            country: "Germany".into(),
            rir: Rir::RipeNcc,
            access: AccessType::FixedLine,
            v4_plan: Some(v4_plan()),
            v6_plan: Some(v6_plan()),
            classes: vec![class()],
            stabilization: vec![],
            subscribers: 100,
        }
    }

    #[test]
    fn valid_config_passes() {
        config().validate().unwrap();
    }

    #[test]
    fn v6_plan_validation() {
        let mut p = v6_plan();
        p.delegated_len = 30;
        assert!(p.validate().is_err(), "delegated shorter than region");
        let mut p = v6_plan();
        p.region_len = 10;
        assert!(p.validate().is_err(), "region shorter than aggregate");
        let mut p = v6_plan();
        p.aggregates.clear();
        assert!(p.validate().is_err());
        let mut p = v6_plan();
        p.regions_per_aggregate = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn v4_plan_validation() {
        let mut p = v4_plan();
        p.pools[0].1 = 0.0;
        assert!(p.validate().is_err(), "zero weight");
        let mut p = v4_plan();
        p.announcements = vec!["1.0.0.0/8".parse().unwrap()];
        assert!(p.validate().is_err(), "pool outside announcements");
        let mut p = v4_plan();
        p.pools.clear();
        assert!(p.validate().is_err());
        let mut p = v4_plan();
        p.p_near = 1.5;
        assert!(p.validate().is_err(), "p_near out of range");
    }

    #[test]
    fn effective_announcements_default_to_pools() {
        let mut p = v4_plan();
        p.announcements.clear();
        assert_eq!(
            p.effective_announcements(),
            vec![
                "84.128.0.0/12".parse().unwrap(),
                "91.0.0.0/13".parse().unwrap()
            ]
        );
    }

    #[test]
    fn class_cross_checks() {
        let mut c = config();
        c.classes[0].v4 = None;
        assert!(c.validate().is_err(), "dual-stack without v4 policy");

        let mut c = config();
        c.classes[0].dual_stack = false;
        c.classes[0].v6 = None;
        c.validate().unwrap();

        let mut c = config();
        c.v6_plan = None;
        assert!(c.validate().is_err(), "v6 policy without v6 plan");

        let mut c = config();
        c.classes[0].cpe_mix.clear();
        assert!(c.validate().is_err(), "v6 without cpe mix");

        let mut c = config();
        c.subscribers = 0;
        assert!(c.validate().is_err());
    }
}
