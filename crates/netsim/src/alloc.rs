//! Pool index allocators.
//!
//! A DHCP/RADIUS server or DHCPv6-PD server owns a pool of addresses or
//! delegatable prefixes (see `dynamips_netaddr::pool` for the index ↔
//! address mapping); the allocator decides *which* free index a returning
//! subscriber receives. The two behaviours that matter for the paper's
//! findings are:
//!
//! * **sticky** servers remember previous bindings (typical for DHCP with
//!   persistent lease databases) — a subscriber that re-attaches within the
//!   memory window gets the same address back, producing the long, stable
//!   assignments the paper sees on Comcast-like networks;
//! * **non-sticky** servers hand out an arbitrary free index (typical for
//!   RADIUS, which "does not maintain state about previously assigned
//!   addresses") — every reconnect renumbers, producing the 24-hour /
//!   1-week / 2-week periodic patterns of DTAG, Orange and BT.

use rand::Rng;
use std::collections::HashMap;

/// Tracks which indices of a pool of `capacity` elements are in use, and
/// optionally remembers the last index bound to each client.
#[derive(Debug, Clone)]
pub(crate) struct IndexAllocator {
    capacity: u64,
    in_use: Vec<bool>,
    used: u64,
    /// Last known binding per client id, consulted only by
    /// [`IndexAllocator::acquire_sticky`].
    bindings: HashMap<u64, u64>,
    cursor: u64,
}

impl IndexAllocator {
    /// Create an allocator over `capacity` indices. Capacities are clamped
    /// to 2^24 slots of occupancy bitmap; pools larger than that (e.g. the
    /// 2^16+ delegations of a /40) never see enough simulated subscribers to
    /// collide, so larger pools are tracked sparsely via the bindings map
    /// alone and random acquisition.
    pub fn new(capacity: u64) -> Self {
        let dense = capacity.min(1 << 24);
        IndexAllocator {
            capacity,
            in_use: vec![false; dense as usize],
            used: 0,
            // lint:allow(determinism-taint): get/insert/remove only; never iterated
            bindings: HashMap::new(),
            cursor: 0,
        }
    }

    /// Number of currently allocated indices (within the dense range).
    #[cfg(test)]
    pub(crate) fn used(&self) -> u64 {
        self.used
    }

    fn dense_len(&self) -> u64 {
        self.in_use.len() as u64
    }

    /// Acquire a specific index if free. Returns whether it was granted.
    pub(crate) fn acquire_exact(&mut self, client: u64, index: u64) -> bool {
        if index >= self.capacity {
            return false;
        }
        if index < self.dense_len() {
            if self.in_use[index as usize] {
                return false;
            }
            self.in_use[index as usize] = true;
            self.used += 1;
        }
        self.bindings.insert(client, index);
        true
    }

    /// Sticky acquisition: return the client's previous index if it is still
    /// free, otherwise fall back to [`IndexAllocator::acquire_any`].
    pub(crate) fn acquire_sticky<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: u64,
    ) -> Option<u64> {
        if let Some(prev) = self.bindings.get(&client).copied() {
            if self.acquire_exact(client, prev) {
                return Some(prev);
            }
        }
        self.acquire_any(rng, client)
    }

    /// Non-sticky acquisition: pick an arbitrary free index, avoiding the
    /// client's previous one when the pool has alternatives (a renumbering
    /// server virtually never re-issues the address it just reclaimed).
    pub(crate) fn acquire_any<R: Rng + ?Sized>(&mut self, rng: &mut R, client: u64) -> Option<u64> {
        if self.used >= self.dense_len() && self.capacity <= self.dense_len() {
            return None;
        }
        let prev = self.bindings.get(&client).copied();
        // Random probing: at the occupancies we simulate (well under 50%)
        // this terminates almost immediately; fall back to a linear sweep
        // for pathological occupancy.
        for _ in 0..64 {
            let idx = rng.gen_range(0..self.capacity);
            if Some(idx) == prev && self.capacity > 1 {
                continue;
            }
            if idx >= self.dense_len() || !self.in_use[idx as usize] {
                return self.commit(client, idx);
            }
        }
        let start = self.cursor;
        for off in 0..self.dense_len() {
            let idx = (start + off) % self.dense_len();
            if !self.in_use[idx as usize] && Some(idx) != prev {
                self.cursor = idx + 1;
                return self.commit(client, idx);
            }
        }
        // Only the previous index is left.
        prev.filter(|&p| p < self.dense_len() && !self.in_use[p as usize])
            .map(|p| self.commit(client, p).expect("index is free"))
    }

    fn commit(&mut self, client: u64, index: u64) -> Option<u64> {
        if index < self.dense_len() {
            debug_assert!(!self.in_use[index as usize]);
            self.in_use[index as usize] = true;
            self.used += 1;
        }
        self.bindings.insert(client, index);
        Some(index)
    }

    /// Spatially local acquisition: pick a free index within `radius` of
    /// `prev`, excluding `prev` itself — the behaviour of sequential DHCP
    /// allocators that re-issue a nearby address from the same segment
    /// (this is what keeps half of Comcast's observed IPv4 changes inside
    /// the same /24 in the paper's Table 2). Falls back to
    /// [`IndexAllocator::acquire_any`] when no nearby index is free.
    pub(crate) fn acquire_near<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: u64,
        prev: u64,
        radius: u64,
    ) -> Option<u64> {
        let radius = radius.max(1);
        let lo = prev.saturating_sub(radius);
        let hi = (prev + radius).min(self.capacity.saturating_sub(1));
        if hi > lo {
            for _ in 0..32 {
                let idx = rng.gen_range(lo..=hi);
                if idx == prev {
                    continue;
                }
                if idx >= self.dense_len() || !self.in_use[idx as usize] {
                    return self.commit(client, idx);
                }
            }
        }
        self.acquire_any(rng, client)
    }

    /// Release an index back to the pool. The client's binding memory is
    /// retained (that is the point of stickiness); call
    /// [`IndexAllocator::forget`] to drop it.
    pub(crate) fn release(&mut self, index: u64) {
        if index < self.dense_len() && self.in_use[index as usize] {
            self.in_use[index as usize] = false;
            self.used -= 1;
        }
    }

    /// Drop the binding memory for a client (server lost state — e.g. the
    /// infrastructure outages of Section 2.2).
    pub(crate) fn forget(&mut self, client: u64) {
        self.bindings.remove(&client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngutil::derive_rng;

    #[test]
    fn exact_acquire_and_conflict() {
        let mut a = IndexAllocator::new(10);
        assert!(a.acquire_exact(1, 3));
        assert!(!a.acquire_exact(2, 3), "index already held");
        assert!(!a.acquire_exact(2, 10), "out of range");
        assert_eq!(a.used(), 1);
    }

    #[test]
    fn sticky_returns_previous_after_release() {
        let mut rng = derive_rng(1, 0);
        let mut a = IndexAllocator::new(100);
        let first = a.acquire_sticky(&mut rng, 7).unwrap();
        a.release(first);
        let second = a.acquire_sticky(&mut rng, 7).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn sticky_falls_back_when_taken() {
        let mut rng = derive_rng(1, 1);
        let mut a = IndexAllocator::new(100);
        let first = a.acquire_sticky(&mut rng, 7).unwrap();
        a.release(first);
        assert!(a.acquire_exact(8, first));
        let second = a.acquire_sticky(&mut rng, 7).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn non_sticky_avoids_previous_index() {
        let mut rng = derive_rng(1, 2);
        let mut a = IndexAllocator::new(1000);
        for _ in 0..100 {
            let first = a.acquire_any(&mut rng, 7).unwrap();
            a.release(first);
            let second = a.acquire_any(&mut rng, 7).unwrap();
            assert_ne!(first, second);
            a.release(second);
        }
    }

    #[test]
    fn forget_breaks_stickiness_memory() {
        let mut rng = derive_rng(1, 3);
        let mut a = IndexAllocator::new(1 << 20);
        let first = a.acquire_sticky(&mut rng, 7).unwrap();
        a.release(first);
        a.forget(7);
        // With 2^20 indices the chance of randomly landing on the same one
        // is negligible.
        let second = a.acquire_sticky(&mut rng, 7).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut rng = derive_rng(1, 4);
        let mut a = IndexAllocator::new(3);
        let mut held = Vec::new();
        for c in 0..3 {
            held.push(a.acquire_any(&mut rng, c).unwrap());
        }
        held.sort_unstable();
        assert_eq!(held, vec![0, 1, 2], "all three handed out exactly once");
        assert_eq!(a.acquire_any(&mut rng, 9), None);
    }

    #[test]
    fn full_pool_can_reissue_previous_as_last_resort() {
        let mut rng = derive_rng(1, 5);
        let mut a = IndexAllocator::new(1);
        let first = a.acquire_any(&mut rng, 7).unwrap();
        a.release(first);
        // Only one index exists; the client must get it again.
        assert_eq!(a.acquire_any(&mut rng, 7), Some(first));
    }

    #[test]
    fn huge_pools_allocate_sparsely() {
        let mut rng = derive_rng(1, 6);
        // A /40 of /56s has 2^16 elements; a /32 of /56s has 2^24; an entire
        // /19 of /56s has 2^37 — beyond the dense bitmap.
        let mut a = IndexAllocator::new(1 << 37);
        let idx = a.acquire_any(&mut rng, 1).unwrap();
        assert!(idx < (1 << 37));
        a.release(idx); // must not panic
    }

    #[test]
    fn near_acquisition_stays_within_radius() {
        let mut rng = derive_rng(1, 7);
        let mut a = IndexAllocator::new(1 << 16);
        for _ in 0..200 {
            let idx = a.acquire_near(&mut rng, 3, 1000, 128).unwrap();
            assert!((872..=1128).contains(&idx), "{idx}");
            assert_ne!(idx, 1000);
            a.release(idx);
        }
    }

    #[test]
    fn near_acquisition_falls_back_when_neighborhood_full() {
        let mut rng = derive_rng(1, 8);
        let mut a = IndexAllocator::new(1 << 12);
        // Fill the whole neighborhood of index 10.
        for (c, i) in (8..=12).enumerate() {
            assert!(a.acquire_exact(c as u64, i));
        }
        let idx = a.acquire_near(&mut rng, 99, 10, 2).unwrap();
        assert!(!(8..=12).contains(&idx), "fell back outside: {idx}");
    }

    #[test]
    fn near_acquisition_clamps_at_pool_edges() {
        let mut rng = derive_rng(1, 9);
        let mut a = IndexAllocator::new(100);
        for _ in 0..50 {
            let idx = a.acquire_near(&mut rng, 3, 0, 10).unwrap();
            assert!(idx <= 10 && idx != 0);
            a.release(idx);
            let idx = a.acquire_near(&mut rng, 3, 99, 10).unwrap();
            assert!(idx >= 89 && idx != 99);
            a.release(idx);
        }
    }

    #[test]
    fn release_of_unheld_index_is_noop() {
        let mut a = IndexAllocator::new(10);
        a.release(5);
        assert_eq!(a.used(), 0);
    }
}
