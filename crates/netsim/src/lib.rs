//! Discrete-event simulation of ISP address-assignment machinery.
//!
//! The paper observes the *outputs* of operational assignment systems:
//! DHCP/RADIUS servers handing out IPv4 addresses, DHCPv6 servers delegating
//! IPv6 prefixes, CGNATs multiplexing subscribers, and CPE devices choosing
//! how to use their delegations. Since the underlying datasets are
//! proprietary, this crate implements those *mechanisms* directly; the
//! observation layers (`dynamips-atlas`, `dynamips-cdn`) sample the resulting
//! ground-truth timelines, and the analysis pipeline (`dynamips-core`) must
//! recover the configured behaviour.
//!
//! Layout:
//!
//! * [`time`] — the simulation clock (hour resolution, civil-date mapping).
//! * [`event`] — the discrete-event queue.
//! * [`rngutil`] — deterministic sampling helpers.
//! * [`alloc`] — pool index allocators (sticky / random strategies).
//! * [`dhcp`] — RFC 2131 lease and RFC 8415 prefix-delegation state
//!   machines (T1/T2 timers, preferred/valid lifetimes).
//! * [`config`] — per-ISP policy configuration: everything Section 2.2 of
//!   the paper lists as a cause of assignment changes is a knob here.
//! * [`plan`] — per-subscriber concrete policy instances sampled from a
//!   config.
//! * [`timeline`] — ground-truth assignment segments per subscriber.
//! * [`sim`] — the per-ISP discrete-event engine.
//! * [`profiles`] — configurations reproducing the paper's named ISPs plus
//!   per-RIR background populations and cellular operators.
//! * [`world`] — assembly of many ISPs into one synthetic Internet with BGP
//!   announcements and RIR delegations.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub(crate) mod alloc;
pub mod config;
// lint:allow(dead-pub): doctest-facing; the dhcp doc examples import through
// this path.
pub mod dhcp;
pub(crate) mod event;
pub mod plan;
pub mod profiles;
pub mod rngutil;
pub mod sim;
pub mod time;
pub mod timeline;
pub mod world;

pub use config::IspConfig;
pub use sim::{IspSim, IspSimResult};
pub use time::{Date, SimTime, Window, DAY, WEEK, YEAR};
pub use timeline::{SubscriberId, SubscriberTimeline, V4Segment, V6Segment};
pub use world::World;
