//! Property-based tests: for arbitrary (valid) ISP configurations, the
//! simulator's ground truth must satisfy its structural invariants.

use dynamips_netsim::config::{
    CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
    V6PoolPlan,
};
use dynamips_netsim::sim::IspSim;
use dynamips_netsim::time::{SimTime, Window};
use dynamips_routing::{AccessType, Asn, Rir};
use proptest::prelude::*;

fn arb_v4_policy() -> impl Strategy<Value = V4Policy> {
    prop_oneof![
        (12u64..400).prop_map(|p| V4Policy::PeriodicRenumber {
            period_hours: p,
            jitter: 0.02,
        }),
        (24u64..300).prop_map(|lease_hours| V4Policy::DhcpSticky { lease_hours }),
        Just(V4Policy::CgnatShared {
            rebind_prob: 0.2,
            check_interval_hours: 48.0,
        }),
    ]
}

fn arb_v6_policy() -> impl Strategy<Value = V6Policy> {
    prop_oneof![
        (12u64..400).prop_map(|p| V6Policy::PeriodicRenumber {
            period_hours: p,
            jitter: 0.02,
        }),
        (48u64..1000).prop_map(|v| V6Policy::StableDelegation {
            valid_lifetime_hours: v,
            maintenance_mean_hours: 1000.0,
        }),
        Just(V6Policy::SessionBased {
            mean_session_hours: 10.0,
            tail_prob: 0.2,
            tail_max_hours: 500.0,
        }),
    ]
}

fn arb_cpe() -> impl Strategy<Value = CpeV6Behavior> {
    prop_oneof![
        Just(CpeV6Behavior::ZeroOut),
        Just(CpeV6Behavior::Scramble {
            rotate_every_hours: None,
        }),
        Just(CpeV6Behavior::Scramble {
            rotate_every_hours: Some(48),
        }),
        Just(CpeV6Behavior::ConstantNonZero),
    ]
}

#[derive(Debug, Clone)]
struct ArbIsp {
    cfg: IspConfig,
    seed: u64,
    days: u64,
}

fn arb_isp() -> impl Strategy<Value = ArbIsp> {
    (
        arb_v4_policy(),
        arb_v6_policy(),
        arb_cpe(),
        40u8..=60,     // region length
        0u8..=8,       // delegated = region + extra, capped at 64
        any::<bool>(), // coupled
        any::<bool>(), // outages on/off
        1u64..10_000,  // seed
        20u64..90,     // days
    )
        .prop_map(
            |(v4, v6, cpe, region_len, extra, coupled, outages, seed, days)| {
                let delegated_len = (region_len + extra).min(64);
                let cfg = IspConfig {
                    asn: Asn(64500),
                    name: "PropNet".into(),
                    country: "X".into(),
                    rir: Rir::RipeNcc,
                    access: AccessType::FixedLine,
                    v4_plan: Some(V4PoolPlan {
                        pools: vec![
                            ("10.0.0.0/13".parse().unwrap(), 0.6),
                            ("172.16.0.0/14".parse().unwrap(), 0.4),
                        ],
                        announcements: vec![],
                        p_near: 0.2,
                        near_radius: 16,
                    }),
                    v6_plan: Some(V6PoolPlan {
                        aggregates: vec!["2001:db8::/32".parse().unwrap()],
                        region_len,
                        delegated_len,
                        regions_per_aggregate: 3,
                        p_stay_region: 0.9,
                    }),
                    classes: vec![SubscriberClass {
                        weight: 1.0,
                        dual_stack: true,
                        v4: Some(v4),
                        v6: Some(v6),
                        coupled,
                        cpe_mix: vec![(1.0, cpe)],
                        outages: if outages {
                            OutageConfig {
                                cpe_outage_mean_interval_hours: 200.0,
                                cpe_outage_mean_duration_hours: 2.0,
                                long_outage_mean_interval_hours: 900.0,
                                long_outage_mean_duration_hours: 72.0,
                                infra_outage_mean_interval_hours: 1500.0,
                                admin_renumber_mean_interval_hours: 1500.0,
                            }
                        } else {
                            OutageConfig::none()
                        },
                    }],
                    stabilization: vec![],
                    subscribers: 12,
                };
                ArbIsp { cfg, seed, days }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_timelines_satisfy_structural_invariants(input in arb_isp()) {
        let window = Window::new(SimTime(0), SimTime(input.days * 24));
        let aggregates = input.cfg.v6_plan.as_ref().unwrap().aggregates.clone();
        let v4_pools: Vec<dynamips_netaddr::Ipv4Prefix> = input
            .cfg
            .v4_plan
            .as_ref()
            .unwrap()
            .pools
            .iter()
            .map(|(p, _)| *p)
            .collect();
        let delegated_len = input.cfg.v6_plan.as_ref().unwrap().delegated_len;
        let result = IspSim::new(input.cfg, window, input.seed).run();

        prop_assert_eq!(result.timelines.len(), 12);
        for tl in &result.timelines {
            // Ordering/overlap invariants.
            prop_assert!(tl.check_invariants().is_ok());
            for seg in &tl.v4 {
                // Every address comes from a configured pool.
                prop_assert!(
                    v4_pools.iter().any(|p| p.contains(seg.addr)),
                    "{} outside pools", seg.addr
                );
                // Segments stay within the window.
                prop_assert!(seg.start >= window.start && seg.end <= window.end);
            }
            for seg in &tl.v6 {
                prop_assert_eq!(seg.delegated.len(), delegated_len);
                prop_assert!(
                    aggregates.iter().any(|a| a.contains_prefix(&seg.delegated)),
                    "{} outside aggregates", seg.delegated
                );
                prop_assert!(
                    seg.delegated.contains_prefix(&seg.lan64),
                    "lan64 {} outside delegation {}", seg.lan64, seg.delegated
                );
                prop_assert_eq!(seg.lan64.len(), 64);
                prop_assert!(seg.start >= window.start && seg.end <= window.end);
            }
        }

        // No two subscribers hold the same exclusive v4 address at the same
        // time (CGNAT shares by design, so skip it there).
        let cgnat = result.timelines.iter().any(|t| t.v4.iter().any(|s| s.cgnat));
        if !cgnat {
            for probe_hour in [window.hours() / 4, window.hours() / 2] {
                let t = SimTime(window.start.hours() + probe_hour);
                let mut held = std::collections::HashSet::new();
                for tl in &result.timelines {
                    if let Some(seg) = tl.v4_at(t) {
                        prop_assert!(
                            held.insert(seg.addr),
                            "duplicate exclusive address {} at {t:?}", seg.addr
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(input in arb_isp()) {
        let window = Window::new(SimTime(0), SimTime(input.days * 24));
        let run = |cfg: IspConfig| {
            IspSim::new(cfg, window, input.seed)
                .run()
                .timelines
                .iter()
                .flat_map(|t| {
                    t.v6
                        .iter()
                        .map(|s| (s.start, s.lan64))
                        .chain(std::iter::once((
                            SimTime(t.v4.len() as u64),
                            "::/64".parse().unwrap(),
                        )))
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(input.cfg.clone()), run(input.cfg));
    }
}
