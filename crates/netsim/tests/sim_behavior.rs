//! Behavioural tests: the simulator must exhibit exactly the mechanisms the
//! paper attributes to real ISPs, because the analysis pipeline's job is to
//! recover them.

use dynamips_netaddr::trailing_zero_bits_v6;
use dynamips_netsim::config::{
    CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
    V6PoolPlan,
};
use dynamips_netsim::sim::IspSim;
use dynamips_netsim::time::{SimTime, Window};
use dynamips_routing::{AccessType, Asn, Rir};

fn base_isp() -> IspConfig {
    IspConfig {
        asn: Asn(64500),
        name: "TestNet".into(),
        country: "X".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(V4PoolPlan {
            pools: vec![
                ("10.0.0.0/12".parse().unwrap(), 0.7),
                ("172.16.0.0/13".parse().unwrap(), 0.3),
            ],
            announcements: vec![],
            p_near: 0.0,
            near_radius: 256,
        }),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec!["2001:db8::/32".parse().unwrap()],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 4,
            p_stay_region: 1.0,
        }),
        classes: vec![],
        stabilization: vec![],
        subscribers: 40,
    }
}

fn dual_class(v4: V4Policy, v6: V6Policy, coupled: bool, cpe: CpeV6Behavior) -> SubscriberClass {
    SubscriberClass {
        weight: 1.0,
        dual_stack: true,
        v4: Some(v4),
        v6: Some(v6),
        coupled,
        cpe_mix: vec![(1.0, cpe)],
        outages: OutageConfig::none(),
    }
}

fn window_days(days: u64) -> Window {
    Window::new(SimTime(0), SimTime(days * 24))
}

#[test]
fn periodic_policy_produces_exact_periods() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        true,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(60), 1).run();
    for tl in &res.timelines {
        tl.check_invariants().unwrap();
        // Interior segments (sandwiched between changes) last exactly 24h.
        for seg in &tl.v4[1..tl.v4.len().saturating_sub(1)] {
            assert_eq!(seg.end - seg.start, 24, "v4 {seg:?}");
        }
        for seg in &tl.v6[1..tl.v6.len().saturating_sub(1)] {
            assert_eq!(seg.end - seg.start, 24, "v6 {seg:?}");
        }
        // ~59 changes over 60 days.
        assert!(
            tl.v4_changes() >= 57 && tl.v4_changes() <= 60,
            "{}",
            tl.v4_changes()
        );
    }
}

#[test]
fn sticky_policy_without_outages_never_changes() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24 * 14,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(365), 2).run();
    for tl in &res.timelines {
        assert_eq!(tl.v4.len(), 1, "one v4 segment for the whole year");
        assert_eq!(tl.v6.len(), 1, "one v6 segment for the whole year");
        assert_eq!(tl.v4[0].end - tl.v4[0].start, 365 * 24);
    }
}

#[test]
fn coupled_changes_are_simultaneous() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        true,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(30), 3).run();
    for tl in &res.timelines {
        let v4_starts: Vec<_> = tl.v4.iter().skip(1).map(|s| s.start).collect();
        let v6_starts: Vec<_> = tl.v6.iter().skip(1).map(|s| s.start).collect();
        assert_eq!(v4_starts, v6_starts, "coupled renumbering must co-occur");
    }
}

#[test]
fn uncoupled_periodic_families_change_independently() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        V6Policy::PeriodicRenumber {
            period_hours: 36,
            jitter: 0.0,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(60), 4).run();
    let mut cooccur = 0usize;
    let mut total = 0usize;
    for tl in &res.timelines {
        let v6_starts: std::collections::HashSet<_> =
            tl.v6.iter().skip(1).map(|s| s.start).collect();
        for seg in tl.v4.iter().skip(1) {
            total += 1;
            if v6_starts.contains(&seg.start) {
                cooccur += 1;
            }
        }
    }
    // Random phases: most v4 changes should not coincide with v6 changes.
    assert!(total > 100);
    assert!((cooccur as f64) < 0.2 * total as f64, "{cooccur}/{total}");
}

#[test]
fn zero_out_cpe_exposes_delegation_boundary() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(30), 5).run();
    for tl in &res.timelines {
        for seg in &tl.v6 {
            // /56 delegation, zeroed /64 announcement: ≥ 8 trailing zeros.
            assert!(trailing_zero_bits_v6(&seg.lan64) >= 8, "{}", seg.lan64);
            assert_eq!(seg.delegated.len(), 56);
            assert!(seg.delegated.contains_prefix(&seg.lan64));
        }
    }
}

#[test]
fn scramble_cpe_hides_delegation_boundary() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        false,
        CpeV6Behavior::Scramble {
            rotate_every_hours: None,
        },
    )];
    let res = IspSim::new(cfg, window_days(60), 6).run();
    let mut nonzero = 0usize;
    let mut total = 0usize;
    for tl in &res.timelines {
        for seg in &tl.v6 {
            total += 1;
            if trailing_zero_bits_v6(&seg.lan64) < 8 {
                nonzero += 1;
            }
            assert!(seg.delegated.contains_prefix(&seg.lan64));
        }
    }
    // A random 8-bit suffix is zero with probability 1/256.
    assert!(nonzero as f64 > 0.9 * total as f64, "{nonzero}/{total}");
}

#[test]
fn rotating_scramble_changes_lan64_within_same_delegation() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24 * 30,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::Scramble {
            rotate_every_hours: Some(24),
        },
    )];
    let res = IspSim::new(cfg, window_days(30), 7).run();
    for tl in &res.timelines {
        assert!(tl.v6.len() > 20, "daily rotations expected");
        for pair in tl.v6.windows(2) {
            assert_eq!(
                pair[0].delegated, pair[1].delegated,
                "delegation must stay fixed while the /64 rotates"
            );
            assert_ne!(pair[0].lan64, pair[1].lan64);
        }
    }
}

#[test]
fn delegations_stay_within_home_region_when_p_stay_is_one() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(90), 8).run();
    let regions = &res.ground_truth.regions;
    for tl in &res.timelines {
        let homes: std::collections::HashSet<_> = tl
            .v6
            .iter()
            .map(|seg| {
                regions
                    .iter()
                    .position(|r| r.contains_prefix(&seg.delegated))
                    .expect("delegation inside some region")
            })
            .collect();
        assert_eq!(homes.len(), 1, "p_stay_region = 1.0 pins the region");
    }
}

#[test]
fn short_outage_keeps_sticky_address_long_outage_renumbers() {
    let mut cfg = base_isp();
    let mut class = dual_class(
        V4Policy::DhcpSticky { lease_hours: 48 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 48,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    );
    // Frequent short reboots (well under the 48h lease), no long outages.
    class.outages = OutageConfig {
        cpe_outage_mean_interval_hours: 10.0 * 24.0,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: f64::INFINITY,
        long_outage_mean_duration_hours: 1.0,
        infra_outage_mean_interval_hours: f64::INFINITY,
        admin_renumber_mean_interval_hours: f64::INFINITY,
    };
    cfg.classes = vec![class];
    let res = IspSim::new(cfg.clone(), window_days(120), 9).run();
    for tl in &res.timelines {
        assert_eq!(
            tl.v4_changes(),
            0,
            "short reboots must not renumber sticky DHCP"
        );
        assert_eq!(tl.v6_changes(), 0);
    }

    // Now long outages that exceed the lease.
    let mut class = dual_class(
        V4Policy::DhcpSticky { lease_hours: 48 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 48,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    );
    class.outages = OutageConfig {
        cpe_outage_mean_interval_hours: f64::INFINITY,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: 30.0 * 24.0,
        long_outage_mean_duration_hours: 10.0 * 24.0,
        infra_outage_mean_interval_hours: f64::INFINITY,
        admin_renumber_mean_interval_hours: f64::INFINITY,
    };
    cfg.classes = vec![class];
    let res = IspSim::new(cfg, window_days(240), 10).run();
    let total_changes: usize = res.timelines.iter().map(|t| t.v4_changes()).sum();
    assert!(
        total_changes > 30,
        "lease-exceeding outages must renumber: {total_changes}"
    );
}

#[test]
fn cgnat_subscribers_share_public_addresses() {
    let mut cfg = base_isp();
    cfg.access = AccessType::Cellular;
    cfg.v4_plan = Some(V4PoolPlan {
        pools: vec![("100.64.0.0/26".parse().unwrap(), 1.0)],
        announcements: vec![],
        p_near: 0.0,
        near_radius: 0,
    });
    cfg.subscribers = 300;
    cfg.classes = vec![dual_class(
        V4Policy::CgnatShared {
            rebind_prob: 0.15,
            check_interval_hours: 48.0,
        },
        V6Policy::SessionBased {
            mean_session_hours: 16.0,
            tail_prob: 0.25,
            tail_max_hours: 30.0 * 24.0,
        },
        true,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(60), 11).run();
    // 300 subscribers behind 64 public addresses: sharing is inevitable.
    let mut addrs = std::collections::HashSet::new();
    let mut sessions = 0usize;
    for tl in &res.timelines {
        for seg in &tl.v4 {
            assert!(seg.cgnat);
            addrs.insert(seg.addr);
        }
        sessions += tl.v6.len();
    }
    assert!(addrs.len() <= 64);
    assert!(
        sessions > 300 * 10,
        "heavy session churn expected: {sessions}"
    );
}

#[test]
fn mobile_sessions_are_heavy_tailed() {
    let mut cfg = base_isp();
    cfg.access = AccessType::Cellular;
    cfg.subscribers = 200;
    cfg.classes = vec![dual_class(
        V4Policy::CgnatShared {
            rebind_prob: 0.15,
            check_interval_hours: 48.0,
        },
        V6Policy::SessionBased {
            mean_session_hours: 16.0,
            tail_prob: 0.25,
            tail_max_hours: 30.0 * 24.0,
        },
        true,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(152), 12).run();
    let mut durations: Vec<u64> = Vec::new();
    for tl in &res.timelines {
        for seg in &tl.v6[1..tl.v6.len().saturating_sub(1)] {
            durations.push(seg.end - seg.start);
        }
    }
    durations.sort_unstable();
    let short = durations.iter().filter(|&&d| d <= 24).count() as f64;
    assert!(
        short / durations.len() as f64 > 0.5,
        "majority of mobile sessions ≤ 1 day"
    );
    assert!(
        *durations.last().unwrap() > 7 * 24,
        "tail reaching past a week"
    );
}

#[test]
fn infra_outages_renumber_the_whole_region() {
    let mut cfg = base_isp();
    let mut class = dual_class(
        V4Policy::DhcpSticky {
            lease_hours: 24 * 30,
        },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24 * 30,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    );
    class.outages = OutageConfig {
        cpe_outage_mean_interval_hours: f64::INFINITY,
        cpe_outage_mean_duration_hours: 1.0,
        long_outage_mean_interval_hours: f64::INFINITY,
        long_outage_mean_duration_hours: 1.0,
        infra_outage_mean_interval_hours: 100.0 * 24.0,
        admin_renumber_mean_interval_hours: f64::INFINITY,
    };
    cfg.classes = vec![class];
    cfg.subscribers = 60;
    let res = IspSim::new(cfg, window_days(365), 13).run();
    let total_v4: usize = res.timelines.iter().map(|t| t.v4_changes()).sum();
    let total_v6: usize = res.timelines.iter().map(|t| t.v6_changes()).sum();
    assert!(
        total_v4 > 30,
        "infra outages must cause v4 changes: {total_v4}"
    );
    assert!(
        total_v6 > 30,
        "infra outages must cause v6 changes: {total_v6}"
    );
}

#[test]
fn near_reassignment_keeps_addresses_in_the_same_slash24() {
    let mut cfg = base_isp();
    cfg.v4_plan = Some(V4PoolPlan {
        pools: vec![("10.0.0.0/12".parse().unwrap(), 1.0)],
        announcements: vec![],
        p_near: 1.0,
        near_radius: 100,
    });
    cfg.classes = vec![dual_class(
        V4Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24 * 30,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(60), 14).run();
    let mut same24 = 0usize;
    let mut total = 0usize;
    for tl in &res.timelines {
        for pair in tl.v4.windows(2) {
            total += 1;
            let a = dynamips_netaddr::Ipv4Prefix::slash24_of(pair[0].addr);
            let b = dynamips_netaddr::Ipv4Prefix::slash24_of(pair[1].addr);
            if a == b {
                same24 += 1;
            }
        }
    }
    // Radius 100 around a uniformly-placed address stays in the /24 more
    // than half the time.
    assert!(
        same24 as f64 > 0.5 * total as f64,
        "near reassignment should stay local: {same24}/{total}"
    );
}

#[test]
fn stable_delegation_maintenance_renumbers_v6_independently() {
    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 48 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24 * 30,
            maintenance_mean_hours: 40.0 * 24.0,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(365), 21).run();
    let v4: usize = res.timelines.iter().map(|t| t.v4_changes()).sum();
    let v6: usize = res.timelines.iter().map(|t| t.v6_changes()).sum();
    assert_eq!(v4, 0, "no outages: sticky v4 never changes");
    // ~9 maintenance renumberings per subscriber-year.
    assert!(v6 > 40 * 5, "maintenance must drive v6 changes: {v6}");
    // And each one lands in a fresh delegation.
    for tl in &res.timelines {
        for pair in tl.v6.windows(2) {
            assert_ne!(pair[0].delegated, pair[1].delegated);
        }
    }
}

#[test]
fn cgnat_mapping_checks_rebind_mid_session() {
    let mut cfg = base_isp();
    cfg.access = AccessType::Cellular;
    cfg.v4_plan = Some(V4PoolPlan {
        pools: vec![("100.64.0.0/23".parse().unwrap(), 1.0)],
        announcements: vec![],
        p_near: 0.0,
        near_radius: 0,
    });
    cfg.subscribers = 60;
    cfg.classes = vec![dual_class(
        V4Policy::CgnatShared {
            rebind_prob: 0.5,
            check_interval_hours: 24.0,
        },
        // Very long sessions: the /64 never changes, so any public-v4
        // change must come from a mid-session mapping check.
        V6Policy::SessionBased {
            mean_session_hours: 24.0 * 400.0,
            tail_prob: 0.0,
            tail_max_hours: 24.0 * 400.0,
        },
        true,
        CpeV6Behavior::ZeroOut,
    )];
    let res = IspSim::new(cfg, window_days(60), 22).run();
    let v4: usize = res.timelines.iter().map(|t| t.v4_changes()).sum();
    let v6: usize = res.timelines.iter().map(|t| t.v6_changes()).sum();
    assert!(v6 < 60, "sessions outlive the window for most subscribers");
    assert!(
        v4 > 60 * 10,
        "mapping checks must rebind public addresses mid-session: {v4}"
    );
}

#[test]
fn dual_stack_flag_propagates_to_timelines() {
    let mut cfg = base_isp();
    cfg.classes = vec![
        SubscriberClass {
            weight: 0.5,
            dual_stack: false,
            v4: Some(V4Policy::DhcpSticky { lease_hours: 24 }),
            v6: None,
            coupled: false,
            cpe_mix: vec![],
            outages: OutageConfig::none(),
        },
        dual_class(
            V4Policy::DhcpSticky { lease_hours: 24 },
            V6Policy::StableDelegation {
                valid_lifetime_hours: 24 * 14,
                maintenance_mean_hours: f64::INFINITY,
            },
            false,
            CpeV6Behavior::ZeroOut,
        ),
    ];
    cfg.subscribers = 100;
    let res = IspSim::new(cfg, window_days(30), 15).run();
    for tl in &res.timelines {
        if tl.dual_stack {
            assert!(!tl.v6.is_empty());
        } else {
            assert!(tl.v6.is_empty(), "non-dual-stack must have no v6 history");
        }
        assert!(!tl.v4.is_empty());
    }
    let ds = res.timelines.iter().filter(|t| t.dual_stack).count();
    assert!(ds > 25 && ds < 75);
}

#[test]
fn try_new_rejects_invalid_configs() {
    let mut cfg = base_isp();
    cfg.classes = vec![]; // no subscriber classes
    let err = IspSim::try_new(cfg, window_days(10), 1)
        .err()
        .expect("rejected");
    assert!(err.contains("no subscriber classes"), "{err}");

    let mut cfg = base_isp();
    cfg.classes = vec![dual_class(
        V4Policy::DhcpSticky { lease_hours: 24 },
        V6Policy::StableDelegation {
            valid_lifetime_hours: 24,
            maintenance_mean_hours: f64::INFINITY,
        },
        false,
        CpeV6Behavior::ZeroOut,
    )];
    assert!(IspSim::try_new(cfg, window_days(10), 1).is_ok());
}

#[test]
fn stabilization_migrates_lines_to_the_stable_class() {
    use dynamips_netsim::config::Stabilization;
    let mut cfg = base_isp();
    cfg.classes = vec![
        dual_class(
            V4Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            },
            V6Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            },
            true,
            CpeV6Behavior::ZeroOut,
        ),
        dual_class(
            V4Policy::DhcpSticky { lease_hours: 48 },
            V6Policy::StableDelegation {
                valid_lifetime_hours: 24 * 30,
                maintenance_mean_hours: f64::INFINITY,
            },
            false,
            CpeV6Behavior::ZeroOut,
        ),
    ];
    cfg.classes[0].weight = 0.999;
    cfg.classes[1].weight = 0.001;
    cfg.stabilization = vec![Stabilization {
        from_class: 0,
        to_class: 1,
        mean_hours: 60.0 * 24.0, // fast conversion relative to the window
    }];
    cfg.subscribers = 60;
    let res = IspSim::new(cfg, window_days(400), 31).run();
    // Early window: daily changes; late window: essentially none.
    let mut early = 0usize;
    let mut late = 0usize;
    let mid = SimTime(200 * 24);
    for tl in &res.timelines {
        for pair in tl.v4.windows(2) {
            if pair[0].addr != pair[1].addr {
                if pair[1].start < mid {
                    early += 1;
                } else {
                    late += 1;
                }
            }
        }
    }
    assert!(early > 50 * 60, "daily churn before conversion: {early}");
    assert!(
        (late as f64) < 0.1 * early as f64,
        "churn must collapse after stabilization: early {early}, late {late}"
    );
    // Conversions must not themselves renumber: no address change at the
    // instant a line stabilizes... verified implicitly by the collapse in
    // churn without a corresponding spike.
}

#[test]
fn stabilization_can_bring_ipv6_to_v4_only_lines() {
    use dynamips_netsim::config::Stabilization;
    let mut cfg = base_isp();
    cfg.classes = vec![
        SubscriberClass {
            weight: 0.999,
            dual_stack: false,
            v4: Some(V4Policy::DhcpSticky { lease_hours: 48 }),
            v6: None,
            coupled: false,
            cpe_mix: vec![],
            outages: OutageConfig::none(),
        },
        dual_class(
            V4Policy::DhcpSticky { lease_hours: 48 },
            V6Policy::StableDelegation {
                valid_lifetime_hours: 24 * 30,
                maintenance_mean_hours: f64::INFINITY,
            },
            false,
            CpeV6Behavior::ZeroOut,
        ),
    ];
    cfg.classes[1].weight = 0.001;
    cfg.stabilization = vec![Stabilization {
        from_class: 0,
        to_class: 1,
        mean_hours: 100.0 * 24.0,
    }];
    cfg.subscribers = 50;
    let res = IspSim::new(cfg, window_days(400), 32).run();
    let gained_v6 = res
        .timelines
        .iter()
        .filter(|t| !t.v6.is_empty() && t.v6[0].start > SimTime(0))
        .count();
    assert!(
        gained_v6 > 20,
        "many v4-only lines must gain a delegation mid-window: {gained_v6}"
    );
    // Delegations acquired at conversion are well-formed.
    for tl in &res.timelines {
        tl.check_invariants().unwrap();
        for seg in &tl.v6 {
            assert!(seg.delegated.contains_prefix(&seg.lan64));
        }
    }
}
