//! Property tests for the IP-echo TSV serialization.

use dynamips_atlas::records::{from_tsv, from_tsv_lossy, to_tsv, EchoErrorKind, EchoV4, EchoV6};
use dynamips_atlas::ProbeId;
use dynamips_netsim::SimTime;
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_v4() -> impl Strategy<Value = Vec<EchoV4>> {
    proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..40).prop_map(|v| {
        let mut t = 0u64;
        v.into_iter()
            .map(|(dt, client, src)| {
                t += 1 + (dt % 5) as u64;
                EchoV4 {
                    time: SimTime(t),
                    client: Ipv4Addr::from(client),
                    src: Ipv4Addr::from(src),
                }
            })
            .collect()
    })
}

fn arb_v6() -> impl Strategy<Value = Vec<EchoV6>> {
    proptest::collection::vec((any::<u32>(), any::<u128>(), any::<u128>()), 0..40).prop_map(|v| {
        let mut t = 0u64;
        v.into_iter()
            .map(|(dt, client, src)| {
                t += 1 + (dt % 5) as u64;
                EchoV6 {
                    time: SimTime(t),
                    client: Ipv6Addr::from(client),
                    src: Ipv6Addr::from(src),
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn tsv_round_trips_arbitrary_records(
        probe in any::<u32>(),
        v4 in arb_v4(),
        v6 in arb_v6(),
    ) {
        prop_assume!(!v4.is_empty() || !v6.is_empty());
        let text = to_tsv(ProbeId(probe), &v4, &v6);
        let parsed = from_tsv(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].0, ProbeId(probe));
        prop_assert_eq!(&parsed[0].1, &v4);
        prop_assert_eq!(&parsed[0].2, &v6);
    }

    #[test]
    fn parser_never_panics_on_garbage(text in "[ -~\n\t]{0,400}") {
        // Errors are fine; panics are not.
        let _ = from_tsv(&text);
    }

    #[test]
    fn parser_rejects_truncated_lines(
        probe in any::<u32>(),
        v4 in arb_v4(),
        cut in 1usize..20,
    ) {
        prop_assume!(!v4.is_empty());
        let text = to_tsv(ProbeId(probe), &v4, &[]);
        let cut = cut.min(text.trim_end().len() - 1);
        let truncated = &text.trim_end()[..text.trim_end().len() - cut];
        // (a cut inside an IP can still leave a shorter valid address, so
        // Ok with the same record count is possible — but never *more*)
        if let Ok(parsed) = from_tsv(truncated) {
            let records: usize = parsed.iter().map(|(_, a, b)| a.len() + b.len()).sum();
            prop_assert!(records <= v4.len(), "truncation must not add records");
        }
    }

    #[test]
    fn lossy_parser_never_panics_on_garbage(text in "[ -~\n\t]{0,400}") {
        // Quarantines are fine; panics are not.
        let (_, errors) = from_tsv_lossy(&text);
        for e in &errors {
            prop_assert!(e.line >= 1);
            prop_assert!(e.line_text.chars().count() <= 120);
        }
    }

    #[test]
    fn mutated_dumps_never_panic_and_attribute_every_drop(
        probe in any::<u32>(),
        v4 in arb_v4(),
        v6 in arb_v6(),
        muts in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        prop_assume!(!v4.is_empty() || !v6.is_empty());
        let mut bytes = to_tsv(ProbeId(probe), &v4, &v6).into_bytes();
        for (pos, val) in muts {
            let at = pos % bytes.len();
            bytes[at] = val;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();

        // Strict mode: errors are fine, panics are not — and any
        // destructive quarantine in lossy mode implies strict refusal.
        let strict = from_tsv(&mutated);
        let (recovered, errors) = from_tsv_lossy(&mutated);
        if errors.iter().any(|e| {
            !matches!(
                e.kind,
                EchoErrorKind::DuplicateRecord | EchoErrorKind::OutOfOrder
            )
        }) {
            prop_assert!(strict.is_err(), "lossy quarantined a line strict accepted");
        }

        // Conservation: every content line becomes a record or exactly one
        // record-dropping error.
        let content = mutated
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .count();
        let records: usize = recovered.iter().map(|(_, a, b)| a.len() + b.len()).sum();
        let dropped = errors.iter().filter(|e| e.kind.drops_record()).count();
        prop_assert_eq!(records + dropped, content);
    }
}
