//! The Atlas collection pipeline: world → per-probe measurement series.

use crate::records::TEST_ADDRESS;
use crate::series::{private_src, series_from_timeline, ProbeId, ProbeSeries, SeriesOptions};
use dynamips_netsim::rngutil::derive_rng;
use dynamips_netsim::time::Window;
use dynamips_netsim::{SimTime, SubscriberTimeline, World};
use dynamips_routing::Asn;
use rand::Rng;

/// Artifact and deployment knobs, with rates motivated by Appendix A.1's
/// filter population (out of 25,504 raw probes, thousands were filtered as
/// short-lived or multihomed).
#[derive(Debug, Clone, Copy)]
pub struct AtlasConfig {
    /// Fraction of probes whose first v4 report is the RIPE test address.
    pub test_addr_rate: f64,
    /// Fraction of probes deployed multihomed (alternate between two
    /// upstreams).
    pub multihomed_rate: f64,
    /// Fraction of probes whose owner switches ISP mid-deployment.
    pub as_move_rate: f64,
    /// Fraction of probes with non-residential tags.
    pub bad_tag_rate: f64,
    /// Fraction of probes with atypical NAT setups.
    pub atypical_nat_rate: f64,
    /// Fraction of probes deployed for less than a month.
    pub short_lived_rate: f64,
    /// Per-measurement loss probability.
    pub missing_rate: f64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            test_addr_rate: 0.06,
            multihomed_rate: 0.04,
            as_move_rate: 0.03,
            bad_tag_rate: 0.03,
            atypical_nat_rate: 0.03,
            short_lived_rate: 0.10,
            missing_rate: 0.01,
        }
    }
}

impl AtlasConfig {
    /// A clean deployment with no artifacts and no losses — useful for
    /// tests that want to isolate the analysis from the sanitizer.
    pub fn pristine() -> Self {
        AtlasConfig {
            test_addr_rate: 0.0,
            multihomed_rate: 0.0,
            as_move_rate: 0.0,
            bad_tag_rate: 0.0,
            atypical_nat_rate: 0.0,
            short_lived_rate: 0.0,
            missing_rate: 0.0,
        }
    }
}

/// Streams per-probe measurement series out of a simulated world. Probes are
/// the world's subscribers; a configurable share of them exhibit the
/// deployment artifacts of Appendix A.1. Cross-AS artifacts (multihoming,
/// ISP switches) borrow the previous ISP's last subscriber as the second
/// upstream.
pub struct AtlasCollector<'w> {
    world: &'w World,
    window: Window,
    config: AtlasConfig,
}

impl<'w> AtlasCollector<'w> {
    /// Create a collector over `world` for `window`.
    pub fn new(world: &'w World, window: Window, config: AtlasConfig) -> Self {
        AtlasCollector {
            world,
            window,
            config,
        }
    }

    /// Generate every probe's series, invoking `f` for each. Memory stays
    /// bounded by one ISP's simulation plus one probe's series.
    pub fn for_each_probe(&self, mut f: impl FnMut(ProbeSeries)) {
        let mut rng = derive_rng(self.world.seed(), 0xA71A5);
        let mut next_probe = 1u32;
        // Donor from the previous ISP for cross-AS artifacts.
        let mut donor: Option<(Asn, SubscriberTimeline)> = None;

        self.world.run_each(self.window, |result| {
            let asn = result.config.asn;
            for tl in &result.timelines {
                let probe = ProbeId(next_probe);
                next_probe += 1;
                let series = self.build_series(&mut rng, probe, asn, tl, donor.as_ref());
                f(series);
            }
            if let Some(last) = result.timelines.last() {
                donor = Some((asn, last.clone()));
            }
        });
    }

    /// Collect every probe into a vector (small worlds / tests).
    pub fn collect_all(&self) -> Vec<ProbeSeries> {
        let mut out = Vec::new();
        self.for_each_probe(|s| out.push(s));
        out
    }

    fn build_series<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        probe: ProbeId,
        asn: Asn,
        tl: &SubscriberTimeline,
        donor: Option<&(Asn, SubscriberTimeline)>,
    ) -> ProbeSeries {
        let cfg = &self.config;
        let total = self.window.hours();

        // Deployment lifetime.
        let observed = if rng.gen_bool(cfg.short_lived_rate) {
            // Under a month: filtered by the sanitizer.
            let len = rng.gen_range(24..(30 * 24));
            let start = self.window.start + rng.gen_range(0..total.saturating_sub(len).max(1));
            Window::new(start, SimTime(start.hours() + len))
        } else {
            // Staggered joins over the first 40% of the window, covering at
            // least several months.
            let start_off = rng.gen_range(0..(total * 2 / 5).max(1));
            let start = self.window.start + start_off;
            let end_off = rng.gen_range(0..(total / 10).max(1));
            Window::new(start, SimTime(self.window.end.hours() - end_off))
        };

        let atypical = rng.gen_bool(cfg.atypical_nat_rate);
        let opts = SeriesOptions {
            observed,
            missing_rate: cfg.missing_rate,
            public_v4_src: atypical,
            mismatched_v6_src: atypical,
        };
        let (mut v4, mut v6) = series_from_timeline(rng, probe, tl, &opts);

        // Artifact: the shipping test address on the first reports.
        if rng.gen_bool(cfg.test_addr_rate) && !v4.is_empty() {
            let n = rng.gen_range(1..=3.min(v4.len()));
            for r in v4.iter_mut().take(n) {
                r.client = TEST_ADDRESS;
                r.src = private_src(probe);
            }
        }

        let mut tags = Vec::new();
        if rng.gen_bool(cfg.bad_tag_rate) {
            tags.push(["datacentre", "core", "system-anchor"][rng.gen_range(0..3)].to_string());
        }

        // Artifact: multihoming — alternate hours come from the donor
        // upstream (a different AS).
        if let Some((_donor_asn, donor_tl)) = donor {
            if rng.gen_bool(cfg.multihomed_rate) {
                let (dv4, dv6) = series_from_timeline(rng, probe, donor_tl, &opts);
                splice_alternating(&mut v4, &dv4, |r| r.time);
                splice_alternating(&mut v6, &dv6, |r| r.time);
            } else if rng.gen_bool(cfg.as_move_rate) {
                // Artifact: ISP switch at mid-deployment.
                let mid = SimTime(observed.start.hours() + observed.hours() / 2);
                let (dv4, dv6) = series_from_timeline(rng, probe, donor_tl, &opts);
                v4.retain(|r| r.time < mid);
                v4.extend(dv4.into_iter().filter(|r| r.time >= mid));
                v6.retain(|r| r.time < mid);
                v6.extend(dv6.into_iter().filter(|r| r.time >= mid));
            }
        }

        ProbeSeries {
            probe,
            asn,
            tags,
            v4,
            v6,
        }
    }
}

/// Replace measurements at odd hours with the donor's, producing the
/// A-B-A-B pattern of a multihomed deployment.
fn splice_alternating<T: Copy>(own: &mut [T], donor: &[T], time: impl Fn(&T) -> SimTime) {
    let donor_by_hour: std::collections::HashMap<u64, T> =
        donor.iter().map(|r| (time(r).hours(), *r)).collect();
    for r in own.iter_mut() {
        let h = time(r).hours();
        if h % 2 == 1 {
            if let Some(d) = donor_by_hour.get(&h) {
                *r = *d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::config::{
        CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
        V6PoolPlan,
    };
    use dynamips_routing::{AccessType, Rir};

    fn test_world() -> World {
        let mut world = World::new(99);
        for (asn, v4, v6) in [
            (64500u32, "198.18.0.0/16", "2001:db8::/32"),
            (64501, "198.51.100.0/24", "3fff::/32"),
        ] {
            world.add_isp(IspConfig {
                asn: Asn(asn),
                name: format!("ISP{asn}"),
                country: "X".into(),
                rir: Rir::RipeNcc,
                access: AccessType::FixedLine,
                v4_plan: Some(V4PoolPlan {
                    pools: vec![(v4.parse().unwrap(), 1.0)],
                    announcements: vec![],
                    p_near: 0.0,
                    near_radius: 16,
                }),
                v6_plan: Some(V6PoolPlan {
                    aggregates: vec![v6.parse().unwrap()],
                    region_len: 40,
                    delegated_len: 56,
                    regions_per_aggregate: 2,
                    p_stay_region: 1.0,
                }),
                classes: vec![SubscriberClass {
                    weight: 1.0,
                    dual_stack: true,
                    v4: Some(V4Policy::PeriodicRenumber {
                        period_hours: 24,
                        jitter: 0.0,
                    }),
                    v6: Some(V6Policy::PeriodicRenumber {
                        period_hours: 24,
                        jitter: 0.0,
                    }),
                    coupled: true,
                    cpe_mix: vec![(1.0, CpeV6Behavior::ZeroOut)],
                    outages: OutageConfig::none(),
                }],
                stabilization: vec![],
                subscribers: 10,
            });
        }
        world
    }

    fn window() -> Window {
        Window::new(SimTime(0), SimTime(24 * 90))
    }

    #[test]
    fn pristine_collection_yields_one_probe_per_subscriber() {
        let world = test_world();
        let collector = AtlasCollector::new(&world, window(), AtlasConfig::pristine());
        let probes = collector.collect_all();
        assert_eq!(probes.len(), 20);
        // Unique, ascending probe ids.
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(p.probe, ProbeId(i as u32 + 1));
            assert!(!p.v4.is_empty());
            assert!(!p.v6.is_empty());
            assert!(p.tags.is_empty());
        }
        // Probes of the first ISP report addresses from its pool.
        for r in &probes[0].v4 {
            assert!(
                r.client.octets()[0] == 198 && r.client.octets()[1] == 18,
                "{}",
                r.client
            );
        }
    }

    #[test]
    fn pristine_series_are_hourly_and_contiguous() {
        let world = test_world();
        let collector = AtlasCollector::new(&world, window(), AtlasConfig::pristine());
        let probes = collector.collect_all();
        for p in &probes {
            for w in p.v4.windows(2) {
                assert_eq!(w[1].time - w[0].time, 1, "hourly cadence");
            }
        }
    }

    #[test]
    fn artifacts_appear_at_roughly_configured_rates() {
        let world = test_world();
        let mut cfg = AtlasConfig::pristine();
        cfg.test_addr_rate = 1.0;
        cfg.bad_tag_rate = 1.0;
        let collector = AtlasCollector::new(&world, window(), cfg);
        let probes = collector.collect_all();
        for p in &probes {
            assert_eq!(p.v4[0].client, TEST_ADDRESS);
            assert_eq!(p.tags.len(), 1);
        }
    }

    #[test]
    fn multihomed_probes_alternate_between_ases() {
        let world = test_world();
        let mut cfg = AtlasConfig::pristine();
        cfg.multihomed_rate = 1.0;
        let collector = AtlasCollector::new(&world, window(), cfg);
        let probes = collector.collect_all();
        // ISP 2's probes have a donor (ISP 1's last subscriber): their v4
        // series must mix 198.51.100.x and 198.18.x.y.
        let second_isp: Vec<_> = probes.iter().filter(|p| p.asn == Asn(64501)).collect();
        assert_eq!(second_isp.len(), 10);
        for p in second_isp {
            let own =
                p.v4.iter()
                    .filter(|r| r.client.octets()[0] == 198 && r.client.octets()[1] == 51)
                    .count();
            let donor = p.v4.iter().filter(|r| r.client.octets()[1] == 18).count();
            assert!(own > 0 && donor > 0, "own={own} donor={donor}");
        }
    }

    #[test]
    fn as_move_probes_switch_halfway() {
        let world = test_world();
        let mut cfg = AtlasConfig::pristine();
        cfg.as_move_rate = 1.0;
        let collector = AtlasCollector::new(&world, window(), cfg);
        let probes = collector.collect_all();
        for p in probes.iter().filter(|p| p.asn == Asn(64501)) {
            let first = p.v4.first().unwrap();
            let last = p.v4.last().unwrap();
            assert_eq!(first.client.octets()[1], 51, "starts on own ISP");
            assert_eq!(last.client.octets()[1], 18, "ends on donor ISP");
            // Strictly ordered in time despite the splice.
            for w in p.v4.windows(2) {
                assert!(w[0].time < w[1].time);
            }
        }
    }

    #[test]
    fn short_lived_probes_are_short() {
        let world = test_world();
        let mut cfg = AtlasConfig::pristine();
        cfg.short_lived_rate = 1.0;
        let collector = AtlasCollector::new(&world, window(), cfg);
        for p in collector.collect_all() {
            assert!(p.observed_hours() < 30 * 24, "{}", p.observed_hours());
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let world = test_world();
        let collector = AtlasCollector::new(&world, window(), AtlasConfig::default());
        let a: Vec<usize> = collector.collect_all().iter().map(|p| p.v4.len()).collect();
        let b: Vec<usize> = collector.collect_all().iter().map(|p| p.v4.len()).collect();
        assert_eq!(a, b);
    }
}
