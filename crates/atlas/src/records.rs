//! IP-echo record types and their flat-text serialization.
//!
//! The real datasets are distributed as flat text; we mirror that with a
//! TSV layout of one measurement per line:
//!
//! ```text
//! <probe_id> TAB <hour> TAB <af> TAB <client_ip> TAB <src_addr>
//! ```
//!
//! Two parsers are provided. [`from_tsv`] is strict and fail-fast: the
//! first malformed line aborts the parse — the right behavior for
//! round-trip tests and internally produced dumps. [`from_tsv_lossy`]
//! ingests real-world-shaped garbage: malformed lines are quarantined with
//! a typed [`EchoErrorKind`] and the parse continues, duplicate records are
//! dropped, and out-of-order records are re-sorted — each repair accounted
//! for, in the spirit of the paper's Appendix-A.1 bookkeeping.

// Ingest code must degrade, never abort: no unwraps or expects on
// data-derived values (tests are exempt via clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::series::ProbeId;
use dynamips_netsim::SimTime;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The RIPE NCC address used for testing probes before shipping; appears as
/// the first reported address on many probes and must be filtered
/// (Appendix A.1).
pub const TEST_ADDRESS: Ipv4Addr = Ipv4Addr::new(193, 0, 0, 78);

/// One hourly IPv4 IP-echo measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoV4 {
    /// Measurement hour.
    pub time: SimTime,
    /// Publicly visible address (`X-Client-IP`).
    pub client: Ipv4Addr,
    /// The probe's locally configured address; RFC 1918 behind a typical
    /// home NAT.
    pub src: Ipv4Addr,
}

/// One hourly IPv6 IP-echo measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoV6 {
    /// Measurement hour.
    pub time: SimTime,
    /// Publicly visible address (`X-Client-IP`).
    pub client: Ipv6Addr,
    /// The probe's locally configured address; equal to `client` in a
    /// typical (NAT-free) IPv6 deployment.
    pub src: Ipv6Addr,
}

/// Serialize one probe's measurements as TSV lines (v4 then v6, each in
/// time order).
pub fn to_tsv(probe: ProbeId, v4: &[EchoV4], v6: &[EchoV6]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in v4 {
        // Writing to a String cannot fail.
        let _ = writeln!(
            out,
            "{}\t{}\t4\t{}\t{}",
            probe.0,
            r.time.hours(),
            r.client,
            r.src
        );
    }
    for r in v6 {
        let _ = writeln!(
            out,
            "{}\t{}\t6\t{}\t{}",
            probe.0,
            r.time.hours(),
            r.client,
            r.src
        );
    }
    out
}

/// Machine-readable classification of one quarantined echo TSV line, the
/// per-class taxonomy the degradation accounting aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EchoErrorKind {
    /// Wrong number of TAB-separated fields.
    FieldCount,
    /// Probe id is not a `u32`.
    BadProbeId,
    /// Hour is not a `u64`.
    BadHour,
    /// Address-family field is neither `4` nor `6`.
    BadFamily,
    /// Client address does not parse in the line's address family (covers
    /// garbage and mixed-family addresses alike).
    BadClientAddr,
    /// Source address does not parse in the line's address family.
    BadSrcAddr,
    /// Exact duplicate of an already-ingested record (lossy mode only; the
    /// duplicate is dropped).
    DuplicateRecord,
    /// Record time regressed within its probe's stream (lossy mode only;
    /// the record is kept and the stream re-sorted).
    OutOfOrder,
}

impl EchoErrorKind {
    /// Stable kebab-case label for per-class quarantine accounting.
    pub fn class(&self) -> &'static str {
        match self {
            EchoErrorKind::FieldCount => "field-count",
            EchoErrorKind::BadProbeId => "bad-probe-id",
            EchoErrorKind::BadHour => "bad-hour",
            EchoErrorKind::BadFamily => "bad-family",
            EchoErrorKind::BadClientAddr => "bad-client-addr",
            EchoErrorKind::BadSrcAddr => "bad-src-addr",
            EchoErrorKind::DuplicateRecord => "duplicate-record",
            EchoErrorKind::OutOfOrder => "out-of-order",
        }
    }

    /// Whether the offending record was dropped (vs. repaired in place).
    pub fn drops_record(&self) -> bool {
        !matches!(self, EchoErrorKind::OutOfOrder)
    }
}

impl std::fmt::Display for EchoErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.class())
    }
}

impl std::error::Error for EchoErrorKind {}

/// Longest prefix of the offending line kept in an error, in chars.
pub(crate) const ERROR_LINE_TEXT_CHARS: usize = 120;

/// Truncate an offending line for error context, char-boundary safe.
pub(crate) fn truncate_line_text(line: &str) -> String {
    if line.chars().count() <= ERROR_LINE_TEXT_CHARS {
        line.to_string()
    } else {
        line.chars().take(ERROR_LINE_TEXT_CHARS).collect()
    }
}

/// Error from parsing an echo TSV dump.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(dead-pub): named in the pub from_tsv/from_tsv_lossy signatures;
// callers consume values without ever spelling the type name.
pub struct EchoParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line's text, truncated to 120 chars.
    pub line_text: String,
    /// Machine-readable classification.
    pub kind: EchoErrorKind,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for EchoParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "echo TSV line {}: {} (line: {:?})",
            self.line, self.message, self.line_text
        )
    }
}

impl std::error::Error for EchoParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.kind)
    }
}

/// One probe's parsed records: `(probe, v4 records, v6 records)`.
pub(crate) type ProbeRecords = (ProbeId, Vec<EchoV4>, Vec<EchoV6>);

/// One successfully parsed line.
enum EchoLine {
    V4(u32, EchoV4),
    V6(u32, EchoV6),
}

/// Parse one non-blank, non-comment line.
fn parse_echo_line(lineno: usize, line: &str) -> Result<EchoLine, EchoParseError> {
    let err = |kind: EchoErrorKind, message: String| EchoParseError {
        line: lineno,
        line_text: truncate_line_text(line),
        kind,
        message,
    };
    // Destructure the five TAB-separated fields without slice indexing:
    // the shape of data-derived input is checked once, exhaustively, and
    // the extra `next()` rejects six-field lines.
    let mut fields = line.split('\t');
    let (Some(f_probe), Some(f_hour), Some(f_af), Some(f_client), Some(f_src), None) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) else {
        return Err(err(
            EchoErrorKind::FieldCount,
            format!("expected 5 fields, got {}", line.split('\t').count()),
        ));
    };
    let probe: u32 = f_probe.parse().map_err(|_| {
        err(
            EchoErrorKind::BadProbeId,
            format!("bad probe id {f_probe:?}"),
        )
    })?;
    let hour: u64 = f_hour
        .parse()
        .map_err(|_| err(EchoErrorKind::BadHour, format!("bad hour {f_hour:?}")))?;
    match f_af {
        "4" => {
            let client: Ipv4Addr = f_client.parse().map_err(|_| {
                err(
                    EchoErrorKind::BadClientAddr,
                    format!("bad IPv4 client {f_client:?}"),
                )
            })?;
            let src: Ipv4Addr = f_src
                .parse()
                .map_err(|_| err(EchoErrorKind::BadSrcAddr, format!("bad IPv4 src {f_src:?}")))?;
            Ok(EchoLine::V4(
                probe,
                EchoV4 {
                    time: SimTime(hour),
                    client,
                    src,
                },
            ))
        }
        "6" => {
            let client: Ipv6Addr = f_client.parse().map_err(|_| {
                err(
                    EchoErrorKind::BadClientAddr,
                    format!("bad IPv6 client {f_client:?}"),
                )
            })?;
            let src: Ipv6Addr = f_src
                .parse()
                .map_err(|_| err(EchoErrorKind::BadSrcAddr, format!("bad IPv6 src {f_src:?}")))?;
            Ok(EchoLine::V6(
                probe,
                EchoV6 {
                    time: SimTime(hour),
                    client,
                    src,
                },
            ))
        }
        other => Err(err(
            EchoErrorKind::BadFamily,
            format!("bad address family {other:?}"),
        )),
    }
}

/// Grouping accumulator shared by the strict and lossy parsers.
#[derive(Default)]
struct ProbeAccumulator {
    order: Vec<ProbeId>,
    map: std::collections::HashMap<u32, (Vec<EchoV4>, Vec<EchoV6>)>,
}

impl ProbeAccumulator {
    fn entry(&mut self, probe: u32) -> &mut (Vec<EchoV4>, Vec<EchoV6>) {
        self.map.entry(probe).or_insert_with(|| {
            self.order.push(ProbeId(probe));
            (Vec::new(), Vec::new())
        })
    }

    fn finish(mut self) -> Vec<ProbeRecords> {
        self.order
            .into_iter()
            .filter_map(|p| self.map.remove(&p.0).map(|(v4, v6)| (p, v4, v6)))
            .collect()
    }
}

/// Parse a TSV dump back into per-probe measurement lists, grouped by probe
/// id in order of first appearance. Strict: the first malformed line aborts
/// the parse.
pub fn from_tsv(text: &str) -> Result<Vec<ProbeRecords>, EchoParseError> {
    let mut acc = ProbeAccumulator::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_echo_line(idx + 1, line)? {
            EchoLine::V4(probe, r) => acc.entry(probe).0.push(r),
            EchoLine::V6(probe, r) => acc.entry(probe).1.push(r),
        }
    }
    Ok(acc.finish())
}

/// Parse a TSV dump, tolerating malformed input. Every malformed line is
/// quarantined (dropped, with a typed error describing it) rather than
/// aborting the parse; exact duplicate records are dropped; out-of-order
/// records are kept and the per-probe streams re-sorted by time (a stable
/// sort, so equal-time records keep file order). Returns the recovered
/// per-probe records plus one [`EchoParseError`] per quarantine/repair
/// event, for [`DegradationReport`] accounting downstream.
///
/// [`DegradationReport`]: https://docs.rs/dynamips-core
pub fn from_tsv_lossy(text: &str) -> (Vec<ProbeRecords>, Vec<EchoParseError>) {
    let mut acc = ProbeAccumulator::default();
    let mut errors: Vec<EchoParseError> = Vec::new();
    // Previous record's time per (probe, family), for out-of-order
    // detection. Adjacent comparison on purpose: a running maximum would
    // let a single forward-skewed timestamp flag every later record of the
    // stream, while an adjacent inversion flags only the skew's neighbors.
    let mut last_time: std::collections::HashMap<(u32, u8), SimTime> =
        std::collections::HashMap::new();
    // Seen record fingerprints, for duplicate detection.
    let mut seen: std::collections::HashSet<(u32, u8, u64, u128, u128)> =
        std::collections::HashSet::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = match parse_echo_line(lineno, line) {
            Ok(p) => p,
            Err(e) => {
                errors.push(e);
                continue;
            }
        };
        let soft_err = |kind: EchoErrorKind, message: String| EchoParseError {
            line: lineno,
            line_text: truncate_line_text(line),
            kind,
            message,
        };
        let (probe, family, time, fingerprint) = match &parsed {
            EchoLine::V4(p, r) => (
                *p,
                4u8,
                r.time,
                (
                    *p,
                    4u8,
                    r.time.hours(),
                    u32::from(r.client) as u128,
                    u32::from(r.src) as u128,
                ),
            ),
            EchoLine::V6(p, r) => (
                *p,
                6u8,
                r.time,
                (
                    *p,
                    6u8,
                    r.time.hours(),
                    u128::from(r.client),
                    u128::from(r.src),
                ),
            ),
        };
        if !seen.insert(fingerprint) {
            errors.push(soft_err(
                EchoErrorKind::DuplicateRecord,
                format!(
                    "duplicate record for probe {probe} at hour {}",
                    time.hours()
                ),
            ));
            continue;
        }
        match last_time.entry((probe, family)) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if time < *o.get() {
                    errors.push(soft_err(
                        EchoErrorKind::OutOfOrder,
                        format!(
                            "record at hour {} after hour {} for probe {probe}; re-sorted",
                            time.hours(),
                            o.get().hours()
                        ),
                    ));
                }
                o.insert(time);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(time);
            }
        }
        match parsed {
            EchoLine::V4(p, r) => acc.entry(p).0.push(r),
            EchoLine::V6(p, r) => acc.entry(p).1.push(r),
        }
    }

    let mut probes = acc.finish();
    for (_, v4, v6) in &mut probes {
        v4.sort_by_key(|r| r.time);
        v6.sort_by_key(|r| r.time);
    }
    (probes, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<EchoV4>, Vec<EchoV6>) {
        (
            vec![
                EchoV4 {
                    time: SimTime(0),
                    client: "84.128.0.7".parse().unwrap(),
                    src: "192.168.1.20".parse().unwrap(),
                },
                EchoV4 {
                    time: SimTime(1),
                    client: "84.128.0.7".parse().unwrap(),
                    src: "192.168.1.20".parse().unwrap(),
                },
            ],
            vec![EchoV6 {
                time: SimTime(0),
                client: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
                src: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
            }],
        )
    }

    #[test]
    fn tsv_round_trip() {
        let (v4, v6) = sample();
        let text = to_tsv(ProbeId(17), &v4, &v6);
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let (probe, pv4, pv6) = &parsed[0];
        assert_eq!(*probe, ProbeId(17));
        assert_eq!(pv4, &v4);
        assert_eq!(pv6, &v6);
    }

    #[test]
    fn tsv_groups_multiple_probes_in_first_appearance_order() {
        let (v4, v6) = sample();
        let mut text = to_tsv(ProbeId(9), &v4, &v6);
        text.push_str(&to_tsv(ProbeId(3), &v4, &v6));
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, ProbeId(9));
        assert_eq!(parsed[1].0, ProbeId(3));
    }

    #[test]
    fn parse_errors_carry_line_numbers_text_and_kind() {
        let err = from_tsv("1\t0\t4\t84.128.0.7\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("5 fields"));
        assert_eq!(err.kind, EchoErrorKind::FieldCount);
        assert_eq!(err.line_text, "1\t0\t4\t84.128.0.7");

        let err = from_tsv("1\t0\t5\t::1\t::1\n").unwrap_err();
        assert!(err.message.contains("address family"));
        assert_eq!(err.kind, EchoErrorKind::BadFamily);

        let err = from_tsv("1\t0\t4\tnot-an-ip\t192.168.1.1\n").unwrap_err();
        assert!(err.message.contains("bad IPv4 client"));
        assert_eq!(err.kind, EchoErrorKind::BadClientAddr);
    }

    #[test]
    fn error_line_text_truncates_to_120_chars() {
        let long = "x".repeat(500);
        let err = from_tsv(&long).unwrap_err();
        assert_eq!(err.line_text.chars().count(), 120);
        // Display carries line number, message, and the truncated text.
        let shown = err.to_string();
        assert!(shown.contains("line 1"));
        assert!(!shown.contains(&long));
    }

    #[test]
    fn error_source_is_the_kind() {
        use std::error::Error as _;
        let err = from_tsv("garbage line\n").unwrap_err();
        let source = err.source().expect("source");
        assert_eq!(source.to_string(), EchoErrorKind::FieldCount.to_string());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let parsed = from_tsv("# header\n\n").unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn test_address_constant_matches_appendix() {
        assert_eq!(TEST_ADDRESS.to_string(), "193.0.0.78");
    }

    #[test]
    fn lossy_parse_of_clean_input_matches_strict() {
        let (v4, v6) = sample();
        let mut text = to_tsv(ProbeId(9), &v4, &v6);
        text.push_str(&to_tsv(ProbeId(3), &v4, &v6));
        let strict = from_tsv(&text).unwrap();
        let (lossy, errors) = from_tsv_lossy(&text);
        assert!(errors.is_empty());
        assert_eq!(lossy, strict);
    }

    #[test]
    fn lossy_quarantines_bad_lines_and_keeps_the_rest() {
        let (v4, v6) = sample();
        let good = to_tsv(ProbeId(7), &v4, &v6);
        let text =
            format!("mojibake \u{fffd}\u{fffd}\n{good}9\tnot-a-number\t4\t1.2.3.4\t10.0.0.1\n");
        let (lossy, errors) = from_tsv_lossy(&text);
        assert_eq!(lossy, from_tsv(&good).unwrap());
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].kind, EchoErrorKind::FieldCount);
        assert_eq!(errors[1].kind, EchoErrorKind::BadHour);
        assert_eq!(errors[1].line, 5);
    }

    #[test]
    fn lossy_drops_duplicates_with_accounting() {
        let (v4, v6) = sample();
        let good = to_tsv(ProbeId(7), &v4, &v6);
        let text = format!("{good}{good}");
        let (lossy, errors) = from_tsv_lossy(&text);
        assert_eq!(lossy, from_tsv(&good).unwrap());
        assert_eq!(errors.len(), v4.len() + v6.len());
        assert!(errors
            .iter()
            .all(|e| e.kind == EchoErrorKind::DuplicateRecord));
    }

    #[test]
    fn lossy_resorts_out_of_order_records() {
        let text = "1\t5\t4\t84.1.1.1\t192.168.1.2\n\
                    1\t2\t4\t84.1.1.1\t192.168.1.2\n\
                    1\t9\t4\t84.1.1.1\t192.168.1.2\n";
        let (lossy, errors) = from_tsv_lossy(text);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, EchoErrorKind::OutOfOrder);
        assert!(!errors[0].kind.drops_record());
        let times: Vec<u64> = lossy[0].1.iter().map(|r| r.time.hours()).collect();
        assert_eq!(times, vec![2, 5, 9]);
    }

    #[test]
    fn lossy_mixed_family_address_is_quarantined() {
        // A v6 address on an af=4 line: bad client address.
        let text = "1\t0\t4\t2003::1\t192.168.1.2\n";
        let (lossy, errors) = from_tsv_lossy(text);
        assert!(lossy.is_empty());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].kind, EchoErrorKind::BadClientAddr);
    }
}
