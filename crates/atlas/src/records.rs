//! IP-echo record types and their flat-text serialization.
//!
//! The real datasets are distributed as flat text; we mirror that with a
//! TSV layout of one measurement per line:
//!
//! ```text
//! <probe_id> TAB <hour> TAB <af> TAB <client_ip> TAB <src_addr>
//! ```

use crate::series::ProbeId;
use dynamips_netsim::SimTime;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The RIPE NCC address used for testing probes before shipping; appears as
/// the first reported address on many probes and must be filtered
/// (Appendix A.1).
pub const TEST_ADDRESS: Ipv4Addr = Ipv4Addr::new(193, 0, 0, 78);

/// One hourly IPv4 IP-echo measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoV4 {
    /// Measurement hour.
    pub time: SimTime,
    /// Publicly visible address (`X-Client-IP`).
    pub client: Ipv4Addr,
    /// The probe's locally configured address; RFC 1918 behind a typical
    /// home NAT.
    pub src: Ipv4Addr,
}

/// One hourly IPv6 IP-echo measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoV6 {
    /// Measurement hour.
    pub time: SimTime,
    /// Publicly visible address (`X-Client-IP`).
    pub client: Ipv6Addr,
    /// The probe's locally configured address; equal to `client` in a
    /// typical (NAT-free) IPv6 deployment.
    pub src: Ipv6Addr,
}

/// Serialize one probe's measurements as TSV lines (v4 then v6, each in
/// time order).
pub fn to_tsv(probe: ProbeId, v4: &[EchoV4], v6: &[EchoV6]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in v4 {
        writeln!(
            out,
            "{}\t{}\t4\t{}\t{}",
            probe.0,
            r.time.hours(),
            r.client,
            r.src
        )
        .expect("string write");
    }
    for r in v6 {
        writeln!(
            out,
            "{}\t{}\t6\t{}\t{}",
            probe.0,
            r.time.hours(),
            r.client,
            r.src
        )
        .expect("string write");
    }
    out
}

/// Error from parsing an echo TSV dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EchoParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for EchoParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "echo TSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for EchoParseError {}

/// One probe's parsed records: `(probe, v4 records, v6 records)`.
pub type ProbeRecords = (ProbeId, Vec<EchoV4>, Vec<EchoV6>);

/// Parse a TSV dump back into per-probe measurement lists, grouped by probe
/// id in order of first appearance.
pub fn from_tsv(text: &str) -> Result<Vec<ProbeRecords>, EchoParseError> {
    let mut order: Vec<ProbeId> = Vec::new();
    let mut map: std::collections::HashMap<u32, (Vec<EchoV4>, Vec<EchoV6>)> =
        std::collections::HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(EchoParseError {
                line: lineno,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let probe: u32 = fields[0].parse().map_err(|_| EchoParseError {
            line: lineno,
            message: format!("bad probe id {:?}", fields[0]),
        })?;
        let hour: u64 = fields[1].parse().map_err(|_| EchoParseError {
            line: lineno,
            message: format!("bad hour {:?}", fields[1]),
        })?;
        let entry = map.entry(probe).or_insert_with(|| {
            order.push(ProbeId(probe));
            (Vec::new(), Vec::new())
        });
        match fields[2] {
            "4" => {
                let client: Ipv4Addr = fields[3].parse().map_err(|_| EchoParseError {
                    line: lineno,
                    message: format!("bad IPv4 client {:?}", fields[3]),
                })?;
                let src: Ipv4Addr = fields[4].parse().map_err(|_| EchoParseError {
                    line: lineno,
                    message: format!("bad IPv4 src {:?}", fields[4]),
                })?;
                entry.0.push(EchoV4 {
                    time: SimTime(hour),
                    client,
                    src,
                });
            }
            "6" => {
                let client: Ipv6Addr = fields[3].parse().map_err(|_| EchoParseError {
                    line: lineno,
                    message: format!("bad IPv6 client {:?}", fields[3]),
                })?;
                let src: Ipv6Addr = fields[4].parse().map_err(|_| EchoParseError {
                    line: lineno,
                    message: format!("bad IPv6 src {:?}", fields[4]),
                })?;
                entry.1.push(EchoV6 {
                    time: SimTime(hour),
                    client,
                    src,
                });
            }
            other => {
                return Err(EchoParseError {
                    line: lineno,
                    message: format!("bad address family {other:?}"),
                })
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|p| {
            let (v4, v6) = map.remove(&p.0).expect("inserted above");
            (p, v4, v6)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<EchoV4>, Vec<EchoV6>) {
        (
            vec![
                EchoV4 {
                    time: SimTime(0),
                    client: "84.128.0.7".parse().unwrap(),
                    src: "192.168.1.20".parse().unwrap(),
                },
                EchoV4 {
                    time: SimTime(1),
                    client: "84.128.0.7".parse().unwrap(),
                    src: "192.168.1.20".parse().unwrap(),
                },
            ],
            vec![EchoV6 {
                time: SimTime(0),
                client: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
                src: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
            }],
        )
    }

    #[test]
    fn tsv_round_trip() {
        let (v4, v6) = sample();
        let text = to_tsv(ProbeId(17), &v4, &v6);
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let (probe, pv4, pv6) = &parsed[0];
        assert_eq!(*probe, ProbeId(17));
        assert_eq!(pv4, &v4);
        assert_eq!(pv6, &v6);
    }

    #[test]
    fn tsv_groups_multiple_probes_in_first_appearance_order() {
        let (v4, v6) = sample();
        let mut text = to_tsv(ProbeId(9), &v4, &v6);
        text.push_str(&to_tsv(ProbeId(3), &v4, &v6));
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, ProbeId(9));
        assert_eq!(parsed[1].0, ProbeId(3));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_tsv("1\t0\t4\t84.128.0.7\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("5 fields"));

        let err = from_tsv("1\t0\t5\t::1\t::1\n").unwrap_err();
        assert!(err.message.contains("address family"));

        let err = from_tsv("1\t0\t4\tnot-an-ip\t192.168.1.1\n").unwrap_err();
        assert!(err.message.contains("bad IPv4 client"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let parsed = from_tsv("# header\n\n").unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn test_address_constant_matches_appendix() {
        assert_eq!(TEST_ADDRESS.to_string(), "193.0.0.78");
    }
}
