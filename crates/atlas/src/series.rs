//! Per-probe measurement series generation.

use crate::records::{EchoV4, EchoV6};
use dynamips_netsim::time::Window;
use dynamips_netsim::SubscriberTimeline;
use dynamips_routing::Asn;
use rand::Rng;
use std::net::Ipv4Addr;

/// A RIPE-Atlas-style probe identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(pub u32);

/// One probe's full measurement history plus its metadata, the unit the
/// sanitization pipeline works on.
#[derive(Debug, Clone)]
pub struct ProbeSeries {
    /// Probe identifier.
    pub probe: ProbeId,
    /// The AS hosting the probe (ground truth; the analysis re-derives it
    /// from routing lookups).
    pub asn: Asn,
    /// User-assigned tags ("datacentre", "multihomed", ... cause filtering).
    pub tags: Vec<String>,
    /// Hourly IPv4 echo measurements, in time order.
    pub v4: Vec<EchoV4>,
    /// Hourly IPv6 echo measurements, in time order.
    pub v6: Vec<EchoV6>,
}

impl ProbeSeries {
    /// Observation span in hours (first to last measurement of either
    /// family).
    pub fn observed_hours(&self) -> u64 {
        let first = self
            .v4
            .first()
            .map(|r| r.time)
            .into_iter()
            .chain(self.v6.first().map(|r| r.time))
            .min();
        let last = self
            .v4
            .last()
            .map(|r| r.time)
            .into_iter()
            .chain(self.v6.last().map(|r| r.time))
            .max();
        match (first, last) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }
}

/// Generation knobs for one probe's series.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeriesOptions {
    /// Observation sub-window (the probe's deployment lifetime).
    pub observed: Window,
    /// Probability that any individual hourly measurement is missing
    /// (probe busy, server unreachable, ...).
    pub missing_rate: f64,
    /// IPv4 `src_addr` reported by the probe. `None` = the probe sits behind
    /// a typical home NAT and reports a private address; `Some(_)` overrides
    /// (used for the atypical-NAT artifact where `src == client`).
    pub public_v4_src: bool,
    /// If true, the probe's IPv6 `src_addr` disagrees with the echoed
    /// client address (atypical v6 setup; filtered by the sanitizer).
    pub mismatched_v6_src: bool,
}

/// The RFC 1918 address a typical probe reports as its IPv4 `src_addr`.
pub(crate) fn private_src(probe: ProbeId) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 1, 2 + (probe.0 % 250) as u8)
}

/// Generate the hourly echo series for a subscriber-hosted probe by walking
/// the ground-truth timeline segment by segment (no per-hour lookups).
pub(crate) fn series_from_timeline<R: Rng + ?Sized>(
    rng: &mut R,
    probe: ProbeId,
    timeline: &SubscriberTimeline,
    opts: &SeriesOptions,
) -> (Vec<EchoV4>, Vec<EchoV6>) {
    let mut v4 = Vec::new();
    let mut v6 = Vec::new();
    let (lo, hi) = (opts.observed.start, opts.observed.end);

    for seg in &timeline.v4 {
        let start = seg.start.max(lo);
        let end = seg.end.min(hi);
        let mut h = start;
        while h < end {
            if opts.missing_rate <= 0.0 || !rng.gen_bool(opts.missing_rate) {
                let src = if opts.public_v4_src {
                    seg.addr
                } else {
                    private_src(probe)
                };
                v4.push(EchoV4 {
                    time: h,
                    client: seg.addr,
                    src,
                });
            }
            h += 1;
        }
    }

    for seg in &timeline.v6 {
        let start = seg.start.max(lo);
        let end = seg.end.min(hi);
        // lan64 is a /64 by construction; a malformed segment yields no
        // observations rather than a panic.
        let Ok(addr) = seg.lan64.with_iid(timeline.device_iid) else {
            continue;
        };
        let src = if opts.mismatched_v6_src {
            seg.lan64
                .with_iid(timeline.device_iid ^ 0xff)
                .unwrap_or(addr)
        } else {
            addr
        };
        let mut h = start;
        while h < end {
            if opts.missing_rate <= 0.0 || !rng.gen_bool(opts.missing_rate) {
                v6.push(EchoV6 {
                    time: h,
                    client: addr,
                    src,
                });
            }
            h += 1;
        }
    }

    (v4, v6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::timeline::{SubscriberId, V4Segment, V6Segment};
    use dynamips_netsim::SimTime;

    fn timeline() -> SubscriberTimeline {
        SubscriberTimeline {
            id: SubscriberId {
                asn: Asn(3320),
                index: 0,
            },
            dual_stack: true,
            device_iid: 0x0225_96ff_fe12_3456,
            v4: vec![
                V4Segment {
                    start: SimTime(0),
                    end: SimTime(24),
                    addr: "84.128.0.7".parse().unwrap(),
                    cgnat: false,
                },
                V4Segment {
                    start: SimTime(24),
                    end: SimTime(48),
                    addr: "84.129.1.2".parse().unwrap(),
                    cgnat: false,
                },
            ],
            v6: vec![V6Segment {
                start: SimTime(0),
                end: SimTime(48),
                delegated: "2003:40:a0:aa00::/56".parse().unwrap(),
                lan64: "2003:40:a0:aa00::/64".parse().unwrap(),
            }],
        }
    }

    fn opts(observed: Window) -> SeriesOptions {
        SeriesOptions {
            observed,
            missing_rate: 0.0,
            public_v4_src: false,
            mismatched_v6_src: false,
        }
    }

    #[test]
    fn hourly_samples_cover_segments() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = Window::new(SimTime(0), SimTime(48));
        let (v4, v6) = series_from_timeline(&mut rng, ProbeId(1), &timeline(), &opts(w));
        assert_eq!(v4.len(), 48);
        assert_eq!(v6.len(), 48);
        assert_eq!(v4[0].client.to_string(), "84.128.0.7");
        assert_eq!(v4[24].client.to_string(), "84.129.1.2");
        // v6 address embeds the stable device IID.
        assert_eq!(
            v6[0].client.to_string(),
            "2003:40:a0:aa00:225:96ff:fe12:3456"
        );
        assert_eq!(v6[0].src, v6[0].client, "typical v6: src == client");
        assert!(v4[0].src.is_private(), "typical v4: RFC1918 src");
    }

    #[test]
    fn observation_window_clips_series() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = Window::new(SimTime(10), SimTime(30));
        let (v4, v6) = series_from_timeline(&mut rng, ProbeId(1), &timeline(), &opts(w));
        assert_eq!(v4.len(), 20);
        assert_eq!(v4.first().unwrap().time, SimTime(10));
        assert_eq!(v4.last().unwrap().time, SimTime(29));
        assert_eq!(v6.len(), 20);
    }

    #[test]
    fn atypical_nat_options_apply() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = Window::new(SimTime(0), SimTime(5));
        let mut o = opts(w);
        o.public_v4_src = true;
        o.mismatched_v6_src = true;
        let (v4, v6) = series_from_timeline(&mut rng, ProbeId(1), &timeline(), &o);
        assert_eq!(v4[0].src, v4[0].client, "atypical v4: public src");
        assert_ne!(v6[0].src, v6[0].client, "atypical v6: mismatched src");
    }

    #[test]
    fn missing_rate_drops_samples() {
        let mut rng = dynamips_netsim::rngutil::derive_rng(5, 0);
        let w = Window::new(SimTime(0), SimTime(48));
        let mut o = opts(w);
        o.missing_rate = 0.5;
        let (v4, _) = series_from_timeline(&mut rng, ProbeId(1), &timeline(), &o);
        assert!(v4.len() < 40 && v4.len() > 8, "{}", v4.len());
    }

    #[test]
    fn observed_hours_span() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = Window::new(SimTime(0), SimTime(48));
        let (v4, v6) = series_from_timeline(&mut rng, ProbeId(1), &timeline(), &opts(w));
        let series = ProbeSeries {
            probe: ProbeId(1),
            asn: Asn(3320),
            tags: vec![],
            v4,
            v6,
        };
        assert_eq!(series.observed_hours(), 47);
    }

    #[test]
    fn empty_series_has_zero_span() {
        let series = ProbeSeries {
            probe: ProbeId(1),
            asn: Asn(3320),
            tags: vec![],
            v4: vec![],
            v6: vec![],
        };
        assert_eq!(series.observed_hours(), 0);
    }
}
