//! RIPE-Atlas-style observation layer.
//!
//! The paper's primary dataset is the RIPE Atlas "IP echo" measurement
//! (Section 3.1): every probe performs an hourly HTTP GET against an echo
//! server that reports back the publicly visible client address in the
//! `X-Client-IP` header, for both address families. Probes also report their
//! locally configured `src_addr`.
//!
//! This crate turns the ground-truth [`SubscriberTimeline`]s produced by
//! `dynamips-netsim` into exactly that record stream, including the
//! deployment artifacts the paper's Appendix A.1 has to sanitize away:
//!
//! * the RIPE NCC test address `193.0.0.78` reported by freshly shipped
//!   probes,
//! * multihomed probes alternating between two upstreams,
//! * probes whose owner switched ISP mid-stream ("AS moves"),
//! * non-residential probes carrying tags like `datacentre`,
//! * atypical NAT setups (public `src_addr` in IPv4, mismatched
//!   `X-Client-IP`/`src_addr` in IPv6),
//! * short-lived probes and randomly missing measurements.
//!
//! [`SubscriberTimeline`]: dynamips_netsim::SubscriberTimeline

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collect;
pub mod records;
pub mod series;

pub use collect::{AtlasCollector, AtlasConfig};
pub use records::{EchoV4, EchoV6, TEST_ADDRESS};
pub use series::{ProbeId, ProbeSeries};
