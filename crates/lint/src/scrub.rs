//! A comment/string/attribute-aware scrubber for Rust source.
//!
//! `dynamips-lint` deliberately does not parse Rust (the build is offline,
//! so no `syn`); instead it reduces a source file to three aligned views
//! that are cheap to compute and sufficient for token-level rules:
//!
//! * [`ScrubbedSource::code`] — the input with every comment and every
//!   string/char-literal *body* replaced by spaces (newlines kept), so a
//!   rule that greps the code view can never match text that only appears
//!   in a comment, a doc example, or a string literal.
//! * [`ScrubbedSource::comments`] — the comment text per starting line,
//!   for `lint:allow` pragma extraction.
//! * [`ScrubbedSource::test_lines`] — which lines belong to a
//!   `#[cfg(test)]` item (attribute through matching close brace), so
//!   panic-freedom rules can exempt test code.
//!
//! The lexer understands line comments, nested block comments, plain and
//! raw (`r#"…"#`) string literals, byte strings, char literals vs.
//! lifetimes, and escapes. It is intentionally forgiving: on malformed
//! input it degrades to treating the rest of the file as code rather than
//! erroring, because the linter must never be the thing that aborts CI on
//! a file rustc itself accepts.

/// One comment's text (without delimiters), attributed to the line the
/// comment starts on (0-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 0-based line the comment starts on.
    pub line: usize,
    /// `true` if any code precedes the comment on its starting line.
    pub trailing: bool,
    /// The comment body, delimiters stripped.
    pub text: String,
}

/// The three aligned views of one source file.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedSource {
    /// Comment-and-literal-free code, byte-aligned with the input except
    /// that scrubbed bytes become spaces (newlines are preserved).
    pub code: String,
    /// Every comment, in file order.
    pub comments: Vec<Comment>,
    /// Per-line flag: line belongs to a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
}

impl ScrubbedSource {
    /// The scrubbed code, split into lines (no terminators).
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    /// Whether `line` (0-based) is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

/// Scrub `src`, producing the aligned code/comment/test-span views.
pub fn scrub(src: &str) -> ScrubbedSource {
    let bytes = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut line = 0usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Emit one input byte into the code view, either verbatim or blanked.
    // Newlines always pass through so line numbers stay aligned.
    macro_rules! emit {
        ($b:expr, $blank:expr) => {{
            let b = $b;
            if b == b'\n' {
                code.push('\n');
                line += 1;
                line_has_code = false;
            } else if $blank {
                code.push(' ');
            } else {
                code.push(b as char);
                if !(b as char).is_ascii_whitespace() {
                    line_has_code = true;
                }
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match b {
            b'/' if next == Some(b'/') => {
                // Line comment (incl. `///` and `//!` docs).
                let start_line = line;
                let trailing = line_has_code;
                let mut text = String::new();
                let mut j = i + 2;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                text.push_str(&String::from_utf8_lossy(&bytes[i + 2..j]));
                for &c in &bytes[i..j] {
                    emit!(c, true);
                }
                comments.push(Comment {
                    line: start_line,
                    trailing,
                    text,
                });
                i = j;
            }
            b'/' if next == Some(b'*') => {
                // Block comment; Rust block comments nest.
                let start_line = line;
                let trailing = line_has_code;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let inner_end = j.saturating_sub(2).max(i + 2);
                let text = String::from_utf8_lossy(&bytes[i + 2..inner_end]).into_owned();
                for &c in &bytes[i..j] {
                    emit!(c, true);
                }
                comments.push(Comment {
                    line: start_line,
                    trailing,
                    text,
                });
                i = j;
            }
            b'"' => {
                // Plain string literal: blank the body, keep the quotes.
                emit!(b'"', false);
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            emit!(bytes[i], true);
                            emit!(bytes[i + 1], true);
                            i += 2;
                        }
                        b'"' => {
                            emit!(b'"', false);
                            i += 1;
                            break;
                        }
                        other => {
                            emit!(other, true);
                            i += 1;
                        }
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
                let (hashes, quote_at) = raw_string_open(bytes, i);
                for &c in &bytes[i..=quote_at] {
                    emit!(c, false);
                }
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let mut j = quote_at + 1;
                loop {
                    if j >= bytes.len() {
                        break;
                    }
                    if bytes[j] == b'"' && bytes[j..].starts_with(&closer) {
                        for &c in &bytes[j..j + closer.len()] {
                            emit!(c, false);
                        }
                        j += closer.len();
                        break;
                    }
                    emit!(bytes[j], true);
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs. lifetime. A char literal is 'x', '\…',
                // or '\u{…}'; a lifetime is '<ident> with no closing quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    emit!(b'\'', false);
                    for &c in &bytes[i + 1..end] {
                        emit!(c, true);
                    }
                    emit!(b'\'', false);
                    i = end + 1;
                } else {
                    emit!(b'\'', false);
                    i += 1;
                }
            }
            _ => {
                emit!(b, false);
                i += 1;
            }
        }
    }

    let line_count = code.lines().count().max(1);
    let mut out = ScrubbedSource {
        code,
        comments,
        test_lines: vec![false; line_count],
    };
    mark_test_lines(&mut out);
    out
}

/// Does a raw-string literal start at `i` (`r"`, `r#`, `br"`, `br#`)?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of an identifier (`attr"…"` is not raw).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// For a raw string starting at `i`, return `(hash_count, index_of_quote)`.
fn raw_string_open(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// If a char literal starts at `i` (a `'`), return the index of its closing
/// quote; `None` means `i` starts a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = bytes.get(i + 1)?;
    if *next == b'\\' {
        // Escape: scan to the first unescaped closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        None
    } else if *next != b'\'' && bytes.get(i + 2) == Some(&b'\'') {
        // One-byte char 'x' — but `''` is not a char and `'a'` vs `'a `
        // distinguishes char from lifetime.
        Some(i + 2)
    } else {
        // Multi-byte UTF-8 char literal: find a quote within 5 bytes.
        if !next.is_ascii() {
            let mut j = i + 1;
            let limit = (i + 6).min(bytes.len());
            while j < limit {
                if bytes[j] == b'\'' {
                    return Some(j);
                }
                j += 1;
            }
        }
        None
    }
}

/// Mark every line covered by a `#[cfg(test)]` (or `#[cfg(any/all(… test
/// …))]`) item: from the attribute line through the matching close brace
/// of the item it decorates (or its terminating `;` for brace-less items).
fn mark_test_lines(src: &mut ScrubbedSource) {
    let code = src.code.clone();
    let bytes = code.as_bytes();
    let mut search = 0usize;
    while let Some(found) = code[search..].find("#[cfg(") {
        let attr_start = search + found;
        let Some(attr_close) = matching_bracket(bytes, attr_start + 1, b'[', b']') else {
            break;
        };
        let attr_body = &code[attr_start..=attr_close];
        search = attr_close + 1;
        if !attr_mentions_test(attr_body) {
            continue;
        }
        // Find the extent of the decorated item: skip whitespace and any
        // further attributes, then scan to the first `{` or `;`.
        let mut j = attr_close + 1;
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' {
                match matching_bracket(bytes, j + 1, b'[', b']') {
                    Some(close) => j = close + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut item_end = None;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b';' => {
                    item_end = Some(k);
                    break;
                }
                b'{' => {
                    item_end = matching_bracket(bytes, k, b'{', b'}');
                    break;
                }
                _ => k += 1,
            }
        }
        let end = item_end.unwrap_or(bytes.len().saturating_sub(1));
        let first_line = line_of(bytes, attr_start);
        let last_line = line_of(bytes, end);
        for l in first_line..=last_line.min(src.test_lines.len().saturating_sub(1)) {
            src.test_lines[l] = true;
        }
        search = end.min(bytes.len().saturating_sub(1)) + 1;
    }
}

/// Does a `#[cfg(…)]` attribute body reference the `test` predicate?
fn attr_mentions_test(attr: &str) -> bool {
    // `#[cfg(not(test))]` (and friends) guard *live* code; treating them
    // as test spans would hide real findings, so a negated predicate
    // conservatively counts as non-test.
    if attr.contains("not(") {
        return false;
    }
    let mut rest = attr;
    while let Some(pos) = rest.find("test") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + 4..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + 4..];
    }
    false
}

/// Index of the bracket matching `open` at/after `from` (which must point
/// at the opening bracket), or `None` if unbalanced.
fn matching_bracket(bytes: &[u8], from: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    while j < bytes.len() {
        if bytes[j] == open {
            depth += 1;
        } else if bytes[j] == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// 0-based line number of byte offset `at`.
fn line_of(bytes: &[u8], at: usize) -> usize {
    bytes[..at.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = scrub("let x = \"Instant::now()\"; // Instant::now()\n");
        assert!(!s.code.contains("Instant::now"));
        assert!(s.code.contains("let x = \""));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("Instant::now()"));
        assert!(s.comments[0].trailing);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let s = scrub("fn f<'a>(x: &'a str) { let _ = r#\"panic!\"#; let c = 'p'; }\n");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("<'a>"), "lifetime survives: {}", s.code);
        assert!(!s.code.contains("'p'"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("/* outer /* inner */ still comment */ fn f() {}\n");
        assert!(s.code.contains("fn f"));
        assert!(!s.code.contains("outer"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn a() {}\n}\nfn after() {}\n";
        let s = scrub(src);
        assert!(!s.is_test_line(0));
        assert!(s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_and_braceless_items() {
        let src = "#[cfg(all(test, unix))]\nuse std::fs;\nfn live() {}\n";
        let s = scrub(src);
        assert!(s.is_test_line(0));
        assert!(s.is_test_line(1));
        assert!(!s.is_test_line(2));
        // `latest` must not read as the test predicate.
        let other = scrub("#[cfg(feature = \"latest\")]\nmod m {}\n");
        assert!(!other.is_test_line(1));
    }

    #[test]
    fn multiline_strings_keep_line_alignment() {
        let src = "let s = \"a\nb\nc\";\nfn f() {}\n";
        let s = scrub(src);
        let lines = s.code_lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("fn f"));
    }
}
