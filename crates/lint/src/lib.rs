//! `dynamips-lint` — a workspace invariant checker.
//!
//! The repo's earlier PRs established three guarantees by hand: the
//! analysis pipeline is panic-free with a 0/1/2 exit-code contract, the
//! parallel engine is byte-identical to a single-threaded run because no
//! artifact path reads wall-clock time, unseeded randomness, or
//! unordered-map iteration order, and the whole workspace builds offline
//! from vendored path dependencies. This crate turns those prose
//! invariants into checked ones: a comment/string/attribute-aware
//! scrubber (no `syn` — the build is offline), a rule engine with
//! per-rule severities and justified `// lint:allow(<rule>): why`
//! suppression pragmas, and text/JSON reporters for CI.
//!
//! Which paths carry which invariants is declared in the checked-in
//! `lint.toml` at the workspace root ([`config`]); the rules themselves
//! live in [`rules`]. Run it as `dynamips lint` or the standalone
//! `dynamips-lint` binary; exit codes are `0` (clean), `1` (at least one
//! deny-severity finding), `2` (usage or configuration error).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyses;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod engine;
pub mod items;
pub mod report;
pub mod rules;
pub mod scrub;

pub use baseline::{Baseline, BASELINE_FILE, BASELINE_SCHEMA};
pub use config::{Config, Severity};
pub use engine::{
    deny_count, find_root, lint_path_content, lint_workspace, lint_workspace_with_overrides,
};
pub use report::{parse_json, render_text, to_json, to_sarif, LINT_SCHEMA};
pub use rules::{Finding, Rule, ALL_RULES};

/// Output format for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable lines plus a summary.
    Text,
    /// The `dynamips-lint-v1` JSON document.
    Json,
    /// A SARIF 2.1.0 log for standard annotation tooling.
    Sarif,
}

impl Format {
    /// Parse a `--format` operand.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

/// Outcome of a whole-workspace lint run, ready for a CLI to print.
pub struct RunOutcome {
    /// The rendered report in the requested format.
    pub report: String,
    /// Number of deny-severity findings; nonzero means the run failed.
    pub denies: usize,
    /// Findings suppressed by the baseline ratchet.
    pub baselined: usize,
}

/// Lint the workspace at `root` with the given `lint.toml` text, in one
/// call usable from both binaries. When `use_baseline` is set and a
/// `lint-baseline.json` exists at `root`, the ratchet is applied: known
/// findings are suppressed, excess findings survive, and stale entries
/// become deny-severity findings. Errors are configuration or I/O
/// problems (usage-class failures), distinct from findings.
pub fn run(
    root: &std::path::Path,
    config_text: &str,
    format: Format,
    use_baseline: bool,
) -> Result<RunOutcome, String> {
    let cfg = Config::parse(config_text)?;
    let findings = lint_workspace(root, &cfg)?;
    let (findings, baselined) = match load_baseline(root, use_baseline)? {
        Some(base) => {
            let applied = base.apply(findings);
            (applied.kept, applied.suppressed)
        }
        None => (findings, 0),
    };
    let mut report = match format {
        Format::Text => render_text(&findings),
        Format::Json => to_json(&findings),
        Format::Sarif => to_sarif(&findings),
    };
    if format == Format::Text && baselined > 0 {
        report.push_str(&format!(
            "lint: {baselined} known finding(s) suppressed by {BASELINE_FILE}\n"
        ));
    }
    Ok(RunOutcome {
        report,
        denies: deny_count(&findings),
        baselined,
    })
}

/// Read `<root>/lint-baseline.json` if present (and wanted).
fn load_baseline(root: &std::path::Path, use_baseline: bool) -> Result<Option<Baseline>, String> {
    if !use_baseline {
        return Ok(None);
    }
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Baseline::parse(&text).map(Some)
}
