//! `dynamips-lint` — a workspace invariant checker.
//!
//! The repo's earlier PRs established three guarantees by hand: the
//! analysis pipeline is panic-free with a 0/1/2 exit-code contract, the
//! parallel engine is byte-identical to a single-threaded run because no
//! artifact path reads wall-clock time, unseeded randomness, or
//! unordered-map iteration order, and the whole workspace builds offline
//! from vendored path dependencies. This crate turns those prose
//! invariants into checked ones: a comment/string/attribute-aware
//! scrubber (no `syn` — the build is offline), a rule engine with
//! per-rule severities and justified `// lint:allow(<rule>): why`
//! suppression pragmas, and text/JSON reporters for CI.
//!
//! Which paths carry which invariants is declared in the checked-in
//! `lint.toml` at the workspace root ([`config`]); the rules themselves
//! live in [`rules`]. Run it as `dynamips lint` or the standalone
//! `dynamips-lint` binary; exit codes are `0` (clean), `1` (at least one
//! deny-severity finding), `2` (usage or configuration error).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod engine;
pub mod report;
pub mod rules;
pub mod scrub;

pub use config::{Config, Severity};
pub use engine::{deny_count, find_root, lint_path_content, lint_workspace};
pub use report::{parse_json, render_text, to_json, LINT_SCHEMA};
pub use rules::{Finding, Rule, ALL_RULES};

/// Output format for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable lines plus a summary.
    Text,
    /// The `dynamips-lint-v1` JSON document.
    Json,
}

/// Outcome of a whole-workspace lint run, ready for a CLI to print.
pub struct RunOutcome {
    /// The rendered report in the requested format.
    pub report: String,
    /// Number of deny-severity findings; nonzero means the run failed.
    pub denies: usize,
}

/// Lint the workspace at `root` with the given `lint.toml` text, in one
/// call usable from both binaries. Errors are configuration or I/O
/// problems (usage-class failures), distinct from findings.
pub fn run(
    root: &std::path::Path,
    config_text: &str,
    format: Format,
) -> Result<RunOutcome, String> {
    let cfg = Config::parse(config_text)?;
    let findings = lint_workspace(root, &cfg)?;
    let report = match format {
        Format::Text => render_text(&findings),
        Format::Json => to_json(&findings),
    };
    Ok(RunOutcome {
        report,
        denies: deny_count(&findings),
    })
}
