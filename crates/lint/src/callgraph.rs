//! The workspace call graph: functions across every file, linked by
//! conservatively resolved call sites.
//!
//! Resolution is name-based (the linter does not type-check):
//!
//! * a qualified call (`engine::run(…)`, `Pool::alloc(…)`) links to every
//!   function whose qualified path ends with the written segments;
//! * a bare call (`helper(…)`) links to every free function of that name
//!   anywhere in the workspace (imports are invisible to a token scanner);
//! * a method call (`x.compute(…)`) links to every `impl`-block function
//!   of that name — the receiver's type is unknown, so all candidates are
//!   assumed callable.
//!
//! Unresolved names (std, vendor, closures) produce no edge. The result
//! over-approximates the real graph — a reachability verdict can be a
//! false positive but never silently misses a statically written call —
//! which is the right polarity for a checker whose findings gate CI
//! through an explicit, reviewable baseline.

use crate::items::{FileItems, FnItem};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// A function node: the item plus where it came from.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative file path.
    pub file: String,
    /// The collected item.
    pub item: FnItem,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes in deterministic (file, definition) order.
    pub nodes: Vec<Node>,
    /// `edges[i]` = sorted, deduplicated callee node ids of node `i`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from per-file item collections. `files` must be in
    /// a deterministic order (the engine sorts by path).
    pub fn build(files: &[(String, FileItems)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (path, items) in files {
            for f in &items.fns {
                nodes.push(Node {
                    file: path.clone(),
                    item: f.clone(),
                });
            }
        }

        // Name indexes: free functions and methods separately; qualified
        // suffix matching falls back to the full candidate list.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.as_str()).or_default().push(id);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            for call in &n.item.calls {
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                for &cand in candidates {
                    if cand == id {
                        continue; // self-recursion adds nothing to reachability
                    }
                    let c = &nodes[cand];
                    let links = if !call.qual.is_empty() {
                        if call.qual.iter().any(|s| s == "Self") {
                            // `Self::helper()` — same file, any impl fn.
                            c.file == n.file && c.item.is_method
                        } else {
                            qual_suffix_matches(&c.item.qual_name, &call.qual, &call.name)
                        }
                    } else if call.method {
                        c.item.is_method
                    } else {
                        !c.item.is_method
                    };
                    if links {
                        edges[id].push(cand);
                    }
                }
            }
            edges[id].sort_unstable();
            edges[id].dedup();
        }
        CallGraph { nodes, edges }
    }

    /// Node ids of functions defined in `file` with the given name.
    pub fn find(&self, file: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.item.name == name)
            .map(|(id, _)| id)
            .collect()
    }

    /// Breadth-first search from `roots`; returns, for every reachable
    /// node, its BFS parent (roots map to themselves). Deterministic:
    /// roots and adjacency are visited in sorted id order, so the parent
    /// tree — and therefore every reported chain — is stable.
    pub fn bfs(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut sorted_roots = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for r in sorted_roots {
            if r < self.nodes.len() {
                if let Entry::Vacant(slot) = parent.entry(r) {
                    slot.insert(r);
                    queue.push_back(r);
                }
            }
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if let Entry::Vacant(slot) = parent.entry(next) {
                    slot.insert(at);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The chain `root → … → target` as qualified names, given a BFS
    /// parent map. Empty if `target` was not reached.
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut at = target;
        loop {
            let Some(&p) = parents.get(&at) else {
                return Vec::new();
            };
            names.push(self.nodes[at].item.qual_name.clone());
            if p == at {
                break;
            }
            at = p;
        }
        names.reverse();
        names
    }
}

/// Does `qual_name` (e.g. `pool::Pool::alloc`) end with the written
/// segments `qual… :: name` (e.g. `Pool::alloc`)?
fn qual_suffix_matches(qual_name: &str, qual: &[String], name: &str) -> bool {
    let have: Vec<&str> = qual_name.split("::").collect();
    let want: Vec<&str> = qual
        .iter()
        .map(String::as_str)
        .chain(std::iter::once(name))
        .collect();
    if want.len() > have.len() {
        return false;
    }
    have[have.len() - want.len()..] == want[..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::collect_items;
    use crate::scrub::scrub;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let collected: Vec<(String, FileItems)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), collect_items(&scrub(src))))
            .collect();
        CallGraph::build(&collected)
    }

    #[test]
    fn bare_calls_link_across_files() {
        let g = graph(&[
            ("src/main.rs", "fn main() { helper(); }\n"),
            ("src/lib.rs", "pub fn helper() { deep(); }\nfn deep() {}\n"),
        ]);
        let main = g.find("src/main.rs", "main")[0];
        let parents = g.bfs(&[main]);
        let deep = g.find("src/lib.rs", "deep")[0];
        assert_eq!(
            g.chain(&parents, deep),
            vec!["main".to_string(), "helper".into(), "deep".into()]
        );
    }

    #[test]
    fn qualified_calls_filter_candidates() {
        let g = graph(&[
            ("a.rs", "pub mod engine { pub fn run() {} }\n"),
            ("b.rs", "pub mod chaos { pub fn run() {} }\n"),
            ("c.rs", "fn main() { engine::run(); }\n"),
        ]);
        let main = g.find("c.rs", "main")[0];
        let parents = g.bfs(&[main]);
        let engine_run = g.find("a.rs", "run")[0];
        let chaos_run = g.find("b.rs", "run")[0];
        assert!(parents.contains_key(&engine_run));
        assert!(!parents.contains_key(&chaos_run));
    }

    #[test]
    fn method_calls_link_to_methods_only() {
        let g = graph(&[(
            "m.rs",
            "struct S;\nimpl S { fn compute(&self) {} }\nfn compute() {}\nfn main(s: S) { s.compute(); }\n",
        )]);
        let main = g.find("m.rs", "main")[0];
        let parents = g.bfs(&[main]);
        let reached: Vec<&str> = parents
            .keys()
            .map(|&id| g.nodes[id].item.qual_name.as_str())
            .collect();
        assert!(reached.contains(&"S::compute"), "{reached:?}");
        assert!(!reached.contains(&"compute"), "{reached:?}");
    }

    #[test]
    fn unresolved_names_produce_no_edges() {
        let g = graph(&[("x.rs", "fn main() { std::process::abort(); }\n")]);
        let main = g.find("x.rs", "main")[0];
        assert!(g.edges[main].is_empty());
    }
}
