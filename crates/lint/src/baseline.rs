//! The ratcheting baseline: known findings are allowed, but the set can
//! only shrink.
//!
//! Interprocedural analyses surface real debt (panic sites in the
//! mechanism crates reachable from `dynamips run`) that cannot all be
//! paid down in one PR. The checked-in `lint-baseline.json` names that
//! debt as `(path, rule) → count` entries: matching findings are
//! suppressed, a finding *beyond* its entry's count is new and fails the
//! run, and an entry that over-counts — the debt was paid but the
//! baseline not updated — produces a deny-severity [`STALE_BASELINE`]
//! finding. Both directions fail CI, so the file tracks reality exactly
//! and every change to it goes through review. Counts are keyed on
//! `(path, rule)` rather than line numbers or call chains so unrelated
//! edits (a shifted line, a renamed intermediate caller) do not churn the
//! file.
//!
//! Regenerate with `dynamips-lint --write-baseline` — and diff before
//! committing: the only legitimate growth is a reviewed decision to take
//! on new, named debt.

use crate::config::Severity;
use crate::report;
use crate::rules::{Finding, STALE_BASELINE};
use std::collections::BTreeMap;

/// Schema tag of the baseline document.
pub const BASELINE_SCHEMA: &str = "dynamips-lint-baseline-v1";

/// File name the engine auto-loads from the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Parsed baseline: `(path, rule) → allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed finding counts per `(path, rule)`.
    pub entries: BTreeMap<(String, String), usize>,
}

/// Outcome of applying a baseline to a finding list.
#[derive(Debug)]
pub struct Applied {
    /// Findings that survive: new findings plus stale-baseline findings.
    pub kept: Vec<Finding>,
    /// How many findings the baseline suppressed.
    pub suppressed: usize,
}

impl Baseline {
    /// Build a baseline that exactly covers `findings` (stale-baseline
    /// findings themselves are never baselined — that would defeat the
    /// ratchet).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            if f.rule == STALE_BASELINE.id {
                continue;
            }
            *entries.entry((f.path.clone(), f.rule.clone())).or_default() += 1;
        }
        Baseline { entries }
    }

    /// Serialize as the `dynamips-lint-baseline-v1` JSON document
    /// (deterministic: entries sorted by path, then rule).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let total: usize = self.entries.values().sum();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        let _ = writeln!(out, "  \"total\": {total},");
        out.push_str("  \"entries\": [\n");
        for (i, ((path, rule), count)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"rule\": \"{}\", \"count\": {count}}}{comma}",
                report::escape(path),
                report::escape(rule),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a document produced by [`Baseline::to_json`].
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let schema = report::field(json, "schema").ok_or("baseline: missing schema")?;
        if schema != BASELINE_SCHEMA {
            return Err(format!("baseline: unknown schema {schema:?}"));
        }
        let start = json
            .find("\"entries\": [")
            .ok_or("baseline: missing entries")?
            + "\"entries\": [".len();
        let body = &json[start..];
        let end = body.rfind(']').ok_or("baseline: unterminated entries")?;
        let mut entries = BTreeMap::new();
        for obj in body[..end].split("\n    {").skip(1) {
            let path = report::field(obj, "path").ok_or("baseline: entry missing path")?;
            let rule = report::field(obj, "rule").ok_or("baseline: entry missing rule")?;
            let count: usize = report::field_raw(obj, "count")
                .ok_or("baseline: entry missing count")?
                .parse()
                .map_err(|e| format!("baseline: bad count: {e}"))?;
            if count == 0 {
                return Err(format!(
                    "baseline: zero-count entry for {path}|{rule}; delete it instead"
                ));
            }
            if entries
                .insert((path.clone(), rule.clone()), count)
                .is_some()
            {
                return Err(format!("baseline: duplicate entry for {path}|{rule}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// Apply the ratchet: suppress up to the allowed count per
    /// `(path, rule)`, keep the excess as new findings, and emit a
    /// deny-severity stale-baseline finding for every entry the current
    /// run no longer justifies. `findings` must be sorted (the engine
    /// sorts by path/line/rule), so which occurrences are suppressed is
    /// deterministic: the first `count` in file order.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut remaining = self.entries.clone();
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            match remaining.get_mut(&(f.path.clone(), f.rule.clone())) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    suppressed += 1;
                }
                _ => kept.push(f),
            }
        }
        for ((path, rule), left) in remaining {
            if left > 0 {
                kept.push(Finding {
                    path: BASELINE_FILE.to_string(),
                    line: 1,
                    rule: STALE_BASELINE.id.to_string(),
                    severity: Severity::Deny,
                    message: format!(
                        "baseline allows {left} more {rule:?} finding(s) in {path:?} than currently fire; shrink the baseline (dynamips-lint --write-baseline)"
                    ),
                });
            }
        }
        kept.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        Applied { kept, suppressed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: usize, rule: &str) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule: rule.into(),
            severity: Severity::Deny,
            message: format!("{rule} at {path}:{line}"),
        }
    }

    #[test]
    fn round_trips_and_is_deterministic() {
        let fs = vec![
            finding("b.rs", 3, "panic-reach"),
            finding("a.rs", 1, "dead-pub"),
            finding("b.rs", 9, "panic-reach"),
        ];
        let base = Baseline::from_findings(&fs);
        let json = base.to_json();
        assert!(json.contains(BASELINE_SCHEMA));
        assert!(json.contains("\"total\": 3"));
        assert_eq!(Baseline::parse(&json).expect("parses"), base);
    }

    #[test]
    fn exact_match_suppresses_everything() {
        let fs = vec![
            finding("a.rs", 1, "panic-reach"),
            finding("a.rs", 5, "panic-reach"),
        ];
        let base = Baseline::from_findings(&fs);
        let applied = base.apply(fs);
        assert!(applied.kept.is_empty(), "{:#?}", applied.kept);
        assert_eq!(applied.suppressed, 2);
    }

    #[test]
    fn excess_findings_survive_the_ratchet() {
        let base = Baseline::from_findings(&[finding("a.rs", 1, "panic-reach")]);
        let applied = base.apply(vec![
            finding("a.rs", 1, "panic-reach"),
            finding("a.rs", 9, "panic-reach"),
        ]);
        assert_eq!(applied.suppressed, 1);
        assert_eq!(applied.kept.len(), 1);
        assert_eq!(applied.kept[0].line, 9, "first occurrence is baselined");
    }

    #[test]
    fn stale_entries_fail_loudly() {
        let base = Baseline::from_findings(&[
            finding("a.rs", 1, "panic-reach"),
            finding("gone.rs", 2, "dead-pub"),
        ]);
        let applied = base.apply(vec![finding("a.rs", 1, "panic-reach")]);
        assert_eq!(applied.kept.len(), 1, "{:#?}", applied.kept);
        assert_eq!(applied.kept[0].rule, "stale-baseline");
        assert_eq!(applied.kept[0].severity, Severity::Deny);
        assert!(applied.kept[0].message.contains("gone.rs"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        let zero = "{\n  \"schema\": \"dynamips-lint-baseline-v1\",\n  \"total\": 0,\n  \"entries\": [\n    {\"path\": \"a\", \"rule\": \"r\", \"count\": 0}\n  ]\n}\n";
        assert!(Baseline::parse(zero)
            .expect_err("zero")
            .contains("zero-count"));
    }

    #[test]
    fn empty_baseline_is_a_noop() {
        let applied = Baseline::default().apply(vec![finding("a.rs", 1, "panic-reach")]);
        assert_eq!(applied.kept.len(), 1);
        assert_eq!(applied.suppressed, 0);
    }
}
