//! Item collector: from scrubbed source to functions, call sites, and
//! `pub` items — the inputs of the interprocedural analyses.
//!
//! Like [`crate::scrub`], this deliberately does not parse Rust (no
//! `syn`; the build is offline). A single token pass over the scrubbed
//! code view tracks a brace-scope stack (`mod` / `impl` / `fn` / plain
//! block), which is enough to attribute every call site, panic site, and
//! nondeterminism source to the function whose body contains it, and to
//! give each function a qualified name (`module::Type::name`) for
//! readable call chains. The collector is forgiving by construction:
//! malformed nesting degrades to misattribution, never to a panic,
//! because the linter must not be the thing that aborts CI.

use crate::scrub::ScrubbedSource;

/// A call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// Qualifying path segments before the name (`engine::run` → `["engine"]`),
    /// with leading `crate`/`self`/`super` dropped. Empty for bare calls.
    pub qual: Vec<String>,
    /// `true` for `.name(…)` receiver calls — resolved against methods only.
    pub method: bool,
    /// 0-based line of the call.
    pub line: usize,
}

/// A potentially panicking expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics: `panic!`, `unwrap`, `expect`, `index`, ….
    pub token: String,
    /// 0-based line of the site.
    pub line: usize,
}

/// A nondeterminism source category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `Instant::now` / `SystemTime::now`.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng`.
    UnseededRng,
    /// `HashMap` / `HashSet` mention — iteration order is unstable.
    HashOrder,
}

impl TaintKind {
    /// Human label for report messages.
    pub fn as_str(self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock",
            TaintKind::UnseededRng => "unseeded-rng",
            TaintKind::HashOrder => "hash-order",
        }
    }
}

/// A nondeterminism source inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSite {
    /// Source category.
    pub kind: TaintKind,
    /// The offending token, for the report message.
    pub token: String,
    /// 0-based line of the site.
    pub line: usize,
}

/// One `fn` definition with everything the analyses need to know.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Qualified name within the file: `mod::Type::name` (no crate prefix;
    /// the file path supplies that context in reports).
    pub qual_name: String,
    /// 0-based line of the `fn` keyword.
    pub def_line: usize,
    /// `true` if declared `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// `true` if defined inside an `impl` block (candidate for `.x()` calls).
    pub is_method: bool,
    /// `true` if the definition sits in a `#[cfg(test)]` span.
    pub is_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Nondeterminism sources in the body.
    pub taints: Vec<TaintSite>,
}

/// A `pub` item (any kind) at module scope, for the dead-pub analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item name.
    pub name: String,
    /// Item kind keyword (`fn`, `struct`, `enum`, …).
    pub kind: String,
    /// 0-based line of the declaring keyword.
    pub line: usize,
}

/// Everything collected from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function definitions in file order.
    pub fns: Vec<FnItem>,
    /// `pub` items at module scope (including `pub fn`).
    pub pubs: Vec<PubItem>,
}

/// One lexical token of the scrubbed code view.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Token plus its byte offset and 0-based line.
struct Spanned {
    tok: Tok,
    /// Byte offset of the token start in the scrubbed code.
    off: usize,
    /// Byte offset one past the token end.
    end: usize,
    line: usize,
}

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "use", "pub", "mod", "impl", "trait", "struct", "enum",
    "type", "const", "static", "where", "unsafe", "dyn", "async", "await", "self", "Self", "super",
    "crate", "true", "false",
];

/// Macros whose expansion aborts the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the `None`/`Err` arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

fn lex(code: &str) -> Vec<Spanned> {
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut chars = code.char_indices().peekable();
    while let Some(&(off, c)) = chars.peek() {
        if c == '\n' {
            line += 1;
            chars.next();
        } else if c.is_whitespace() {
            chars.next();
        } else if c.is_alphanumeric() || c == '_' {
            let mut end = off;
            let mut word = String::new();
            while let Some(&(o, ch)) = chars.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    word.push(ch);
                    end = o + ch.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(word),
                off,
                end,
                line,
            });
        } else {
            chars.next();
            out.push(Spanned {
                tok: Tok::Punct(c),
                off,
                end: off + c.len_utf8(),
                line,
            });
        }
    }
    out
}

/// What kind of brace scope we are inside.
#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    Impl(String),
    /// Index into `FileItems::fns`.
    Fn(usize),
    Block,
}

/// A declaration seen but whose `{` has not arrived yet.
#[derive(Debug, Clone)]
enum Pending {
    Mod(String),
    Impl(String),
    Fn {
        name: String,
        is_pub: bool,
        line: usize,
    },
    None,
}

/// Collect the functions and `pub` items of one scrubbed file.
pub fn collect_items(src: &ScrubbedSource) -> FileItems {
    let toks = lex(&src.code);
    let mut items = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    // `pub` visibility applies to the next item keyword; `pub(crate)` and
    // friends are not externally visible and are recorded as not-pub.
    let mut pub_pending = false;
    let mut pub_restricted = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Ident(w) => match w.as_str() {
                "pub" => {
                    pub_pending = true;
                    pub_restricted = matches!(toks.get(i + 1), Some(s) if s.tok == Tok::Punct('('));
                    if pub_restricted {
                        // Skip the `(crate)` / `(super)` / `(in path)` group.
                        let mut depth = 0usize;
                        let mut j = i + 1;
                        while j < toks.len() {
                            match toks[j].tok {
                                Tok::Punct('(') => depth += 1,
                                Tok::Punct(')') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        i = j;
                    }
                }
                "mod" => {
                    if let Some(Spanned {
                        tok: Tok::Ident(name),
                        ..
                    }) = toks.get(i + 1)
                    {
                        if at_item_scope(&scopes) && pub_pending && !pub_restricted {
                            items.pubs.push(PubItem {
                                name: name.clone(),
                                kind: "mod".into(),
                                line: t.line,
                            });
                        }
                        pending = Pending::Mod(name.clone());
                        i += 1;
                    }
                    pub_pending = false;
                }
                "impl" => {
                    let (ty, consumed) = impl_type_name(&toks, i + 1);
                    pending = Pending::Impl(ty);
                    i = consumed;
                    pub_pending = false;
                }
                "fn" => {
                    if let Some(Spanned {
                        tok: Tok::Ident(name),
                        ..
                    }) = toks.get(i + 1)
                    {
                        if at_item_scope(&scopes) && pub_pending && !pub_restricted {
                            items.pubs.push(PubItem {
                                name: name.clone(),
                                kind: "fn".into(),
                                line: t.line,
                            });
                        }
                        pending = Pending::Fn {
                            name: name.clone(),
                            is_pub: pub_pending && !pub_restricted,
                            line: t.line,
                        };
                        i += 1;
                    }
                    pub_pending = false;
                }
                "struct" | "enum" | "trait" | "type" | "const" | "static" | "union" => {
                    if at_item_scope(&scopes) && pub_pending && !pub_restricted {
                        if let Some(Spanned {
                            tok: Tok::Ident(name),
                            ..
                        }) = toks.get(i + 1)
                        {
                            items.pubs.push(PubItem {
                                name: name.clone(),
                                kind: w.clone(),
                                line: t.line,
                            });
                        }
                    }
                    pub_pending = false;
                }
                _ => {
                    // Any other ident consumes a pending `pub`: it is a
                    // field or binding name (`pub artifacts: …`), not an
                    // item — except the qualifiers that may sit between
                    // `pub` and the item keyword.
                    if !matches!(w.as_str(), "async" | "unsafe" | "extern") {
                        pub_pending = false;
                    }
                    // Inside a function body, classify call/panic/taint sites.
                    if let Some(fn_idx) = innermost_fn(&scopes) {
                        classify_body_token(&toks, i, fn_idx, &mut items);
                    }
                }
            },
            Tok::Punct('{') => {
                let scope = match std::mem::replace(&mut pending, Pending::None) {
                    Pending::Mod(name) => Scope::Mod(name),
                    Pending::Impl(ty) => Scope::Impl(ty),
                    Pending::Fn { name, is_pub, line } => {
                        let qual_name = qualified_name(&scopes, &name);
                        let is_method = scopes.iter().any(|s| matches!(s, Scope::Impl(_)));
                        items.fns.push(FnItem {
                            name,
                            qual_name,
                            def_line: line,
                            is_pub,
                            is_method,
                            is_test: src.is_test_line(line),
                            calls: Vec::new(),
                            panics: Vec::new(),
                            taints: Vec::new(),
                        });
                        Scope::Fn(items.fns.len() - 1)
                    }
                    Pending::None => Scope::Block,
                };
                scopes.push(scope);
                pub_pending = false;
            }
            Tok::Punct('}') => {
                scopes.pop();
                pending = Pending::None;
                pub_pending = false;
            }
            Tok::Punct(';') => {
                // Trait method declarations and `mod name;` have no body.
                pending = Pending::None;
                pub_pending = false;
            }
            Tok::Punct('[') => {
                // Direct index expression: `x[`, `)[`, `][` with byte
                // adjacency. `vec![` (prev `!`) and `#[` (prev `#`) do not
                // qualify because their previous token is punctuation.
                if let Some(fn_idx) = innermost_fn(&scopes) {
                    if i > 0 {
                        let prev = &toks[i - 1];
                        let adjacent = prev.end == t.off;
                        let indexable = matches!(&prev.tok, Tok::Ident(_))
                            || prev.tok == Tok::Punct(')')
                            || prev.tok == Tok::Punct(']');
                        let prev_is_keyword =
                            matches!(&prev.tok, Tok::Ident(w) if KEYWORDS.contains(&w.as_str()));
                        if adjacent && indexable && !prev_is_keyword {
                            items.fns[fn_idx].panics.push(PanicSite {
                                token: "index".into(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            Tok::Punct(_) => {}
        }
        i += 1;
    }
    items
}

/// Are we at a scope where `pub` items are collected (module/impl level,
/// not inside a function body)?
fn at_item_scope(scopes: &[Scope]) -> bool {
    !scopes.iter().any(|s| matches!(s, Scope::Fn(_)))
}

/// Innermost enclosing function, if any.
fn innermost_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        Scope::Fn(idx) => Some(*idx),
        _ => None,
    })
}

/// `mod::Type::name` from the scope stack.
fn qualified_name(scopes: &[Scope], name: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for s in scopes {
        match s {
            Scope::Mod(m) => parts.push(m),
            Scope::Impl(t) => parts.push(t),
            _ => {}
        }
    }
    parts.push(name);
    parts.join("::")
}

/// Parse the self-type name of an `impl` header starting at `from`;
/// returns `(type_name, index_of_last_consumed_token)`. For
/// `impl Trait for Type` the type after `for` wins; generic parameters and
/// lifetimes are skipped.
fn impl_type_name(toks: &[Spanned], from: usize) -> (String, usize) {
    let mut angle = 0isize;
    let mut ty = String::new();
    let mut after_for = false;
    let mut j = from;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') | Tok::Punct(';') => return (ty, j.saturating_sub(1)),
            Tok::Ident(w) if angle == 0 => {
                if w == "for" {
                    after_for = true;
                    ty.clear();
                } else if w == "where" {
                    // Type name is settled; scan on to the `{`.
                } else if ty.is_empty() || after_for {
                    // Skip lifetime idents (preceded by `'`).
                    let is_lifetime = j > 0 && toks[j - 1].tok == Tok::Punct('\'');
                    if !is_lifetime {
                        ty = w.clone();
                        after_for = false;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (ty, j.saturating_sub(1))
}

/// Classify the ident at `i` inside a function body: call site, panic
/// macro, panicking method, or nondeterminism source.
fn classify_body_token(toks: &[Spanned], i: usize, fn_idx: usize, items: &mut FileItems) {
    let (word, line) = match &toks[i].tok {
        Tok::Ident(w) => (w.as_str(), toks[i].line),
        _ => return,
    };
    let next = toks.get(i + 1).map(|s| &s.tok);
    let prev = i.checked_sub(1).map(|p| &toks[p].tok);
    let f = &mut items.fns[fn_idx];

    // Nondeterminism sources that need no call syntax.
    match word {
        "OsRng" => f.taints.push(TaintSite {
            kind: TaintKind::UnseededRng,
            token: "OsRng".into(),
            line,
        }),
        "HashMap" | "HashSet" => f.taints.push(TaintSite {
            kind: TaintKind::HashOrder,
            token: word.into(),
            line,
        }),
        _ => {}
    }

    // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
    if next == Some(&Tok::Punct('!')) {
        let opens = matches!(
            toks.get(i + 2).map(|s| &s.tok),
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
        );
        if opens && PANIC_MACROS.contains(&word) {
            f.panics.push(PanicSite {
                token: format!("{word}!"),
                line,
            });
        }
        return;
    }

    // Call expression: `name(…)`.
    if next != Some(&Tok::Punct('(')) {
        return;
    }
    if KEYWORDS.contains(&word) {
        return;
    }
    let is_method_call = prev == Some(&Tok::Punct('.'));
    if is_method_call && PANIC_METHODS.contains(&word) {
        f.panics.push(PanicSite {
            token: word.into(),
            line,
        });
        return;
    }

    // Qualifying path: walk back over `seg::seg::…::name`.
    let mut qual: Vec<String> = Vec::new();
    if !is_method_call {
        let mut j = i;
        while j >= 2 && toks[j - 1].tok == Tok::Punct(':') && toks[j - 2].tok == Tok::Punct(':') {
            if j >= 3 {
                if let Tok::Ident(seg) = &toks[j - 3].tok {
                    qual.insert(0, seg.clone());
                    j -= 3;
                    continue;
                }
                // A `<T>::name(…)` or `>::name(…)` qualified call: give up
                // on the path but keep the call.
            }
            break;
        }
        while matches!(
            qual.first().map(String::as_str),
            Some("crate")
                | Some("self")
                | Some("super")
                | Some("std")
                | Some("core")
                | Some("alloc")
        ) {
            // `std::`/`core::` prefixes mark external calls we will not
            // resolve anyway, but the tail may still coincide with a
            // workspace name — keep the discriminating segments only.
            qual.remove(0);
        }
    }

    // Wall-clock sources are qualified calls: `Instant::now`, `SystemTime::now`.
    if word == "now"
        && matches!(
            qual.last().map(String::as_str),
            Some("Instant") | Some("SystemTime")
        )
    {
        f.taints.push(TaintSite {
            kind: TaintKind::WallClock,
            token: format!("{}::now", qual.last().map(String::as_str).unwrap_or("")),
            line,
        });
        return;
    }
    if word == "thread_rng" || word == "from_entropy" {
        f.taints.push(TaintSite {
            kind: TaintKind::UnseededRng,
            token: word.into(),
            line,
        });
        return;
    }

    f.calls.push(CallSite {
        name: word.to_string(),
        qual,
        method: is_method_call,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn collect(src: &str) -> FileItems {
        collect_items(&scrub(src))
    }

    #[test]
    fn fns_methods_and_qualified_names() {
        let items = collect(
            "pub fn free() {}\nmod inner {\n    pub struct T;\n    impl T {\n        pub fn method(&self) {}\n    }\n}\n",
        );
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].qual_name, "free");
        assert!(!items.fns[0].is_method);
        assert!(items.fns[0].is_pub);
        assert_eq!(items.fns[1].qual_name, "inner::T::method");
        assert!(items.fns[1].is_method);
    }

    #[test]
    fn call_sites_with_quals_and_methods() {
        let items = collect(
            "fn f() {\n    helper();\n    engine::run(1);\n    x.compute();\n    std::mem::drop(x);\n}\n",
        );
        let calls = &items.fns[0].calls;
        assert_eq!(calls.len(), 4, "{calls:?}");
        assert_eq!(calls[0].name, "helper");
        assert!(calls[0].qual.is_empty());
        assert_eq!(calls[1].name, "run");
        assert_eq!(calls[1].qual, vec!["engine"]);
        assert!(calls[2].method);
        assert_eq!(calls[3].name, "drop");
        assert_eq!(calls[3].qual, vec!["mem"]);
    }

    #[test]
    fn panic_sites_macros_methods_and_indexing() {
        let items = collect(
            "fn f(v: &[u8], o: Option<u8>) -> u8 {\n    if v.is_empty() { panic!(\"empty\"); }\n    let a = o.unwrap();\n    let b = o.expect(\"x\");\n    let c = v[0];\n    let ok = vec![1];\n    let d = o.unwrap_or(0);\n    a + b + c + d + ok.len() as u8\n}\n",
        );
        let tokens: Vec<&str> = items.fns[0]
            .panics
            .iter()
            .map(|p| p.token.as_str())
            .collect();
        assert_eq!(tokens, vec!["panic!", "unwrap", "expect", "index"]);
    }

    #[test]
    fn taint_sites_collected() {
        let items = collect(
            "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n    let m: HashMap<u8, u8> = HashMap::new();\n    let _ = (t, r, m);\n}\n",
        );
        let kinds: Vec<TaintKind> = items.fns[0].taints.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TaintKind::WallClock));
        assert!(kinds.contains(&TaintKind::UnseededRng));
        assert!(kinds.contains(&TaintKind::HashOrder));
    }

    #[test]
    fn pub_items_and_restricted_visibility() {
        let items = collect(
            "pub struct S;\npub(crate) struct Hidden;\npub enum E { A }\npub const N: u8 = 1;\npub fn f() {}\nfn private() {}\n",
        );
        let names: Vec<&str> = items.pubs.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["S", "E", "N", "f"]);
    }

    #[test]
    fn pub_fields_do_not_leak_onto_following_items() {
        // `pub` on a struct field must not mark the next item as pub:
        // here a private fn and a private const follow structs whose last
        // field is `pub`.
        let items = collect(
            "pub struct S {\n    pub field: u8,\n}\n\nfn private_after_struct() {}\n\npub struct D {\n    pub day: u8,\n}\n\nconst SECRET: u8 = 3;\n",
        );
        let names: Vec<&str> = items.pubs.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["S", "D"]);
        assert!(!items.fns[0].is_pub);
    }

    #[test]
    fn test_fns_are_marked() {
        let items = collect(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert_eq!(items.fns.len(), 2);
        assert!(!items.fns[0].is_test);
        assert!(items.fns[1].is_test);
    }

    #[test]
    fn trait_decls_without_bodies_are_not_fns() {
        let items = collect("trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n");
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "with_default");
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let items =
            collect("impl<'a, T> Display for Wrapper<'a, T> {\n    fn fmt(&self) -> u8 { 0 }\n}\n");
        assert_eq!(items.fns[0].qual_name, "Wrapper::fmt");
    }
}
