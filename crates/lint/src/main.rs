//! `dynamips-lint` — standalone workspace invariant checker.
//!
//! ```text
//! dynamips-lint [--format text|json] [--config lint.toml] [--root DIR] [--rules]
//! ```
//!
//! Exit codes: `0` clean, `1` at least one deny-severity finding, `2`
//! usage or configuration error — the same contract as `dynamips`.

use dynamips_lint::{run, Format, ALL_RULES};
use std::path::PathBuf;

/// Exit code for usage/configuration errors.
const EXIT_USAGE: i32 = 2;
/// Exit code for a run with deny-severity findings.
const EXIT_FINDINGS: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: dynamips-lint [--format text|json] [--config PATH] [--root DIR] [--rules]\n\
         \x20 --format   output format (default: text)\n\
         \x20 --config   lint config (default: <root>/lint.toml)\n\
         \x20 --root     workspace root (default: nearest ancestor with lint.toml)\n\
         \x20 --rules    list the rule set and exit\n\
         exit code: 0 clean, 1 findings at deny severity, 2 usage/config error"
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    let mut format = Format::Text;
    let mut config_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => usage(),
                }
            }
            "--config" => {
                config_path = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--root" => root = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--rules" => {
                for r in ALL_RULES {
                    println!(
                        "{:<12} {:<5} {}",
                        r.id,
                        r.default_severity.as_str(),
                        r.summary
                    );
                }
                return;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|cwd| dynamips_lint::find_root(&cwd))
        })
        .unwrap_or_else(|| {
            eprintln!("dynamips-lint: no lint.toml found above the current directory");
            std::process::exit(EXIT_USAGE);
        });
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dynamips-lint: cannot read {}: {e}", config_path.display());
            std::process::exit(EXIT_USAGE);
        }
    };

    match run(&root, &config_text, format) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.denies > 0 {
                std::process::exit(EXIT_FINDINGS);
            }
        }
        Err(e) => {
            eprintln!("dynamips-lint: {e}");
            std::process::exit(EXIT_USAGE);
        }
    }
}
