//! `dynamips-lint` — standalone workspace invariant checker.
//!
//! ```text
//! dynamips-lint [--format text|json|sarif] [--config lint.toml] [--root DIR]
//!               [--no-baseline] [--write-baseline] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` at least one deny-severity finding, `2`
//! usage or configuration error — the same contract as `dynamips`.

use dynamips_lint::{run, Baseline, Config, Format, ALL_RULES, BASELINE_FILE};
use std::path::PathBuf;

/// Exit code for usage/configuration errors.
const EXIT_USAGE: i32 = 2;
/// Exit code for a run with deny-severity findings.
const EXIT_FINDINGS: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: dynamips-lint [--format text|json|sarif] [--config PATH] [--root DIR]\n\
         \x20                    [--no-baseline] [--write-baseline] [--list-rules]\n\
         \x20 --format          output format (default: text)\n\
         \x20 --config          lint config (default: <root>/lint.toml)\n\
         \x20 --root            workspace root (default: nearest ancestor with lint.toml)\n\
         \x20 --no-baseline     ignore lint-baseline.json: report the full finding set\n\
         \x20 --write-baseline  regenerate lint-baseline.json from the current findings\n\
         \x20                   (review the diff: the ratchet should only shrink)\n\
         \x20 --list-rules      list every rule id, severity, and description, then exit\n\
         exit code: 0 clean, 1 findings at deny severity, 2 usage/config error"
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    let mut format = Format::Text;
    let mut config_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut use_baseline = true;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = args
                    .next()
                    .as_deref()
                    .and_then(Format::parse)
                    .unwrap_or_else(|| usage())
            }
            "--config" => {
                config_path = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--root" => root = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--no-baseline" => use_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--list-rules" | "--rules" => {
                for r in ALL_RULES {
                    println!(
                        "{:<18} {:<5} {}",
                        r.id,
                        r.default_severity.as_str(),
                        r.summary
                    );
                }
                return;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|cwd| dynamips_lint::find_root(&cwd))
        })
        .unwrap_or_else(|| {
            eprintln!("dynamips-lint: no lint.toml found above the current directory");
            std::process::exit(EXIT_USAGE);
        });
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dynamips-lint: cannot read {}: {e}", config_path.display());
            std::process::exit(EXIT_USAGE);
        }
    };

    if write_baseline {
        // Regenerate the ratchet from the *full* finding set (the current
        // baseline is deliberately ignored) and report what changed.
        let cfg = match Config::parse(&config_text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dynamips-lint: {e}");
                std::process::exit(EXIT_USAGE);
            }
        };
        let findings = match dynamips_lint::lint_workspace(&root, &cfg) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dynamips-lint: {e}");
                std::process::exit(EXIT_USAGE);
            }
        };
        let base = Baseline::from_findings(&findings);
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, base.to_json()) {
            eprintln!("dynamips-lint: cannot write {}: {e}", path.display());
            std::process::exit(EXIT_USAGE);
        }
        println!(
            "wrote {} ({} finding(s) across {} entries) — diff before committing; the ratchet should only shrink",
            path.display(),
            findings.len(),
            base.entries.len()
        );
        return;
    }

    match run(&root, &config_text, format, use_baseline) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.denies > 0 {
                std::process::exit(EXIT_FINDINGS);
            }
        }
        Err(e) => {
            eprintln!("dynamips-lint: {e}");
            std::process::exit(EXIT_USAGE);
        }
    }
}
