//! The rule set: every invariant the workspace enforces mechanically.
//!
//! Each rule is grounded in a guarantee an earlier PR established by hand
//! and that nothing else would keep true:
//!
//! * PR 1 made the analysis pipeline panic-free with a 0/1/2 exit-code
//!   contract → [`PANIC_PATH`], [`SLICE_INDEX`], [`EXIT_CODE`],
//!   [`PRINT_IN_LIB`].
//! * PR 2 made the parallel engine byte-identical to `--threads 1`
//!   because no artifact path reads wall-clock time, unseeded randomness,
//!   or unordered-map iteration order → [`WALL_CLOCK`], [`UNSEEDED_RNG`],
//!   [`HASH_ITER`].
//! * The build is offline and `unsafe`-free by policy → [`OFFLINE_DEPS`],
//!   [`CRATE_ROOT`].
//!
//! Rules operate on the scrubbed code view (comments and literal bodies
//! blanked), so banned tokens inside strings, doc examples, or comments
//! never fire. Findings are suppressed line-by-line with
//! `// lint:allow(<rule>): <justification>` pragmas; a pragma without a
//! justification is itself a finding ([`BARE_ALLOW`]).

use crate::config::{Config, Severity};
use crate::scrub::ScrubbedSource;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id, used in output and `lint:allow` pragmas.
    pub id: &'static str,
    /// Severity when `lint.toml` does not override it.
    pub default_severity: Severity,
    /// One-line description for `--explain` style output and docs.
    pub summary: &'static str,
}

/// Determinism: no wall-clock reads outside the declared timing layer.
pub const WALL_CLOCK: Rule = Rule {
    id: "wall-clock",
    default_severity: Severity::Deny,
    summary: "Instant::now/SystemTime::now outside the perf-exempt timing layer",
};

/// Concurrency: thread creation stays in the parallel engine and the
/// serving layer; ad-hoc threads elsewhere reintroduce scheduling
/// nondeterminism the engine's design deliberately contains.
pub const THREAD_SPAWN: Rule = Rule {
    id: "thread-spawn",
    default_severity: Severity::Deny,
    summary: "thread::spawn/scope outside the declared threads-allowed layer",
};

/// Determinism: no OS-entropy randomness anywhere (seeded RNGs only).
pub const UNSEEDED_RNG: Rule = Rule {
    id: "unseeded-rng",
    default_severity: Severity::Deny,
    summary: "thread_rng/from_entropy/OsRng: all randomness must be seeded",
};

/// Determinism: render paths must not touch unordered maps at all.
pub const HASH_ITER: Rule = Rule {
    id: "hash-iter",
    default_severity: Severity::Deny,
    summary: "HashMap/HashSet in a render path (iteration order leaks into artifacts)",
};

/// Panic-freedom: no panicking calls in pipeline/ingest non-test code.
pub const PANIC_PATH: Rule = Rule {
    id: "panic-path",
    default_severity: Severity::Deny,
    summary: "unwrap/expect/panic!/unreachable!/todo! in panic-free code",
};

/// Panic-freedom: ingest parsers must not index data-derived slices.
pub const SLICE_INDEX: Rule = Rule {
    id: "slice-index",
    default_severity: Severity::Deny,
    summary: "direct slice indexing in an ingest parser (use get/destructuring)",
};

/// Contract: exit codes live in one place.
pub const EXIT_CODE: Rule = Rule {
    id: "exit-code",
    default_severity: Severity::Deny,
    summary: "process::exit outside the binary's exit-code module, or a bare literal code",
};

/// Contract: library crates never print; rendering returns strings.
pub const PRINT_IN_LIB: Rule = Rule {
    id: "print-in-lib",
    default_severity: Severity::Deny,
    summary: "println!/eprintln!/dbg! in a library crate",
};

/// Hygiene: every crate root forbids unsafe code and warns on missing docs.
pub const CRATE_ROOT: Rule = Rule {
    id: "crate-root",
    default_severity: Severity::Deny,
    summary: "crate root missing #![deny(unsafe_code)] or #![warn(missing_docs)]",
};

/// Hygiene: dependencies resolve offline (workspace or vendor paths only).
pub const OFFLINE_DEPS: Rule = Rule {
    id: "offline-deps",
    default_severity: Severity::Deny,
    summary: "Cargo.toml dependency that is not a workspace/path dependency",
};

/// Meta: `lint:allow` pragmas must carry a justification.
pub const BARE_ALLOW: Rule = Rule {
    id: "bare-allow",
    default_severity: Severity::Deny,
    summary: "lint:allow pragma without a justification (or naming an unknown rule)",
};

/// Interprocedural: panic sites reachable from a pipeline entry point.
pub const PANIC_REACH: Rule = Rule {
    id: "panic-reach",
    default_severity: Severity::Deny,
    summary: "panic/unwrap/expect site reachable from a pipeline entry point (call-graph)",
};

/// Interprocedural: nondeterminism sources reachable from a renderer.
pub const DETERMINISM_TAINT: Rule = Rule {
    id: "determinism-taint",
    default_severity: Severity::Deny,
    summary: "wall-clock/RNG/hash-order source reachable from an artifact renderer (call-graph)",
};

/// Interprocedural: `pub` items no other crate ever references.
pub const DEAD_PUB: Rule = Rule {
    id: "dead-pub",
    default_severity: Severity::Deny,
    summary: "pub item never referenced outside its crate (make it pub(crate) or remove it)",
};

/// Meta: the checked-in baseline may only shrink.
pub const STALE_BASELINE: Rule = Rule {
    id: "stale-baseline",
    default_severity: Severity::Deny,
    summary: "lint-baseline.json entry that no longer fires (shrink the baseline)",
};

/// Every rule, for docs, pragma validation, and `--list-rules` output.
pub const ALL_RULES: [Rule; 15] = [
    WALL_CLOCK,
    THREAD_SPAWN,
    UNSEEDED_RNG,
    HASH_ITER,
    PANIC_PATH,
    SLICE_INDEX,
    EXIT_CODE,
    PRINT_IN_LIB,
    CRATE_ROOT,
    OFFLINE_DEPS,
    BARE_ALLOW,
    PANIC_REACH,
    DETERMINISM_TAINT,
    DEAD_PUB,
    STALE_BASELINE,
];

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    ALL_RULES.iter().find(|r| r.id == id)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id.
    pub rule: String,
    /// Effective severity (after `lint.toml` overrides).
    pub severity: Severity,
    /// Human-readable description of this occurrence.
    pub message: String,
}

/// Is the character an identifier constituent?
fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Word-boundary occurrences of `needle` in `line` (byte offsets).
/// A trailing `(` in the needle anchors a call; a trailing `!` anchors a
/// macro. The character before the match must not be an identifier char.
fn token_hits(line: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = line.as_bytes();
    let mut from = 0;
    // The boundary checks only bind where the needle's own edge is an
    // identifier char: `.unwrap(` starts with `.`, so any preceding char
    // is fine, while `panic!` must not match inside `my_panic!`.
    let first_is_ident = needle.as_bytes().first().is_some_and(|&b| is_ident(b));
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = !first_is_ident || at == 0 || !is_ident(bytes[at - 1]);
        let after = bytes.get(at + needle.len()).copied();
        // If the needle ends in an identifier char, the next char must not
        // extend it (`.unwrap` must not match `.unwrap_or`).
        let after_ok = if needle.as_bytes().last().is_some_and(|&b| is_ident(b)) {
            !after.is_some_and(is_ident)
        } else {
            true
        };
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

/// The path-derived scopes a file falls into.
struct FileScope {
    test_path: bool,
    render: bool,
    perf_exempt: bool,
    panic_free: bool,
    ingest: bool,
    exit_allowed: bool,
    print_allowed: bool,
    threads_allowed: bool,
    crate_root: bool,
}

impl FileScope {
    fn classify(path: &str, cfg: &Config) -> FileScope {
        let test_path = path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("tests/")
            || path.starts_with("examples/");
        FileScope {
            test_path,
            render: Config::path_in(path, &cfg.render_paths),
            perf_exempt: Config::path_in(path, &cfg.perf_exempt),
            panic_free: Config::path_in(path, &cfg.panic_free),
            ingest: Config::path_in(path, &cfg.ingest_paths),
            exit_allowed: Config::path_in(path, &cfg.exit_allowed),
            print_allowed: Config::path_in(path, &cfg.print_allowed),
            threads_allowed: Config::path_in(path, &cfg.threads_allowed),
            crate_root: path.ends_with("src/lib.rs"),
        }
    }
}

/// A `lint:allow` pragma, resolved to the line it suppresses.
pub(crate) struct Allow {
    /// 0-based line whose findings are suppressed.
    pub(crate) target_line: usize,
    pub(crate) rules: Vec<String>,
}

impl Allow {
    /// Does this pragma suppress `rule` on 0-based `line`?
    pub(crate) fn covers(&self, line: usize, rule: &str) -> bool {
        self.target_line == line && self.rules.iter().any(|r| r == rule)
    }
}

/// Extract the justified `lint:allow` pragmas of a file without emitting
/// pragma-hygiene findings (those were already reported by the per-file
/// pass); used by the interprocedural analyses for site suppression.
pub(crate) fn file_allows(path: &str, src: &ScrubbedSource, cfg: &Config) -> Vec<Allow> {
    let mut sink = Vec::new();
    let code_lines = src.code_lines();
    let mut allows = collect_allows(path, src, &code_lines, &mut sink, cfg);
    // Findings emitted into `sink` mark malformed pragmas; those never
    // suppress anything, and collect_allows already excluded them.
    allows.sort_by_key(|a| a.target_line);
    allows
}

/// Extract `lint:allow` pragmas and their own findings (missing
/// justification, unknown rule ids).
fn collect_allows(
    path: &str,
    src: &ScrubbedSource,
    code_lines: &[&str],
    findings: &mut Vec<Finding>,
    cfg: &Config,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    let bare_sev = cfg.severity_of(BARE_ALLOW.id, BARE_ALLOW.default_severity);
    for c in &src.comments {
        // A pragma must *lead* the comment ( `// lint:allow(…): why` );
        // prose that merely mentions lint:allow mid-sentence is not one.
        if !c.text.trim_start().starts_with("lint:allow(") {
            continue;
        }
        let Some(open) = c.text.find("lint:allow(") else {
            continue;
        };
        let after = &c.text[open + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            if bare_sev != Severity::Allow {
                findings.push(Finding {
                    path: path.to_string(),
                    line: c.line + 1,
                    rule: BARE_ALLOW.id.to_string(),
                    severity: bare_sev,
                    message: "malformed lint:allow pragma (unclosed rule list)".to_string(),
                });
            }
            continue;
        };
        let mut rules = Vec::new();
        for raw in after[..close].split(',') {
            let id = raw.trim();
            if id.is_empty() {
                continue;
            }
            if rule_by_id(id).is_none() {
                if bare_sev != Severity::Allow {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: c.line + 1,
                        rule: BARE_ALLOW.id.to_string(),
                        severity: bare_sev,
                        message: format!("lint:allow names unknown rule {id:?}"),
                    });
                }
                continue;
            }
            rules.push(id.to_string());
        }
        // A justification is required: non-empty text after the `)`,
        // introduced by `:`, `-`, or an em dash.
        let tail = after[close + 1..]
            .trim_start()
            .trim_start_matches([':', '-', '—'])
            .trim();
        if tail.is_empty() {
            if bare_sev != Severity::Allow {
                findings.push(Finding {
                    path: path.to_string(),
                    line: c.line + 1,
                    rule: BARE_ALLOW.id.to_string(),
                    severity: bare_sev,
                    message: "lint:allow pragma without a justification".to_string(),
                });
            }
            continue;
        }
        // Trailing pragma covers its own line; a standalone pragma covers
        // the next line that carries code.
        let target_line = if c.trailing {
            c.line
        } else {
            let mut t = c.line + 1;
            while t < code_lines.len() && code_lines[t].trim().is_empty() {
                t += 1;
            }
            t
        };
        allows.push(Allow { target_line, rules });
    }
    allows
}

/// Lint one Rust source file (already scrubbed by the caller's engine).
pub fn lint_rust(path: &str, src: &ScrubbedSource, cfg: &Config) -> Vec<Finding> {
    let code_lines = src.code_lines();
    let mut findings: Vec<Finding> = Vec::new();
    let scope = FileScope::classify(path, cfg);
    let allows = collect_allows(path, src, &code_lines, &mut findings, cfg);

    let mut push = |rule: &Rule, line0: usize, message: String| {
        let sev = cfg.severity_of(rule.id, rule.default_severity);
        if sev == Severity::Allow {
            return;
        }
        if allows
            .iter()
            .any(|a| a.target_line == line0 && a.rules.iter().any(|r| r == rule.id))
        {
            return;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: line0 + 1,
            rule: rule.id.to_string(),
            severity: sev,
            message,
        });
    };

    for (line0, line) in code_lines.iter().enumerate() {
        let in_test = scope.test_path || src.is_test_line(line0);

        // Determinism: wall clock. Applies to test code too — a test that
        // times itself is a flaky test — but not to the timing layer.
        if !scope.perf_exempt {
            for needle in ["Instant::now", "SystemTime::now"] {
                for _ in token_hits(line, needle) {
                    push(
                        &WALL_CLOCK,
                        line0,
                        format!("{needle} outside the perf-exempt timing layer"),
                    );
                }
            }
        }

        // Concurrency: thread creation outside the declared layer. Tests
        // may spawn freely (they exercise concurrency on purpose).
        if !scope.threads_allowed && !in_test {
            for needle in ["thread::spawn", "thread::scope", ".spawn("] {
                for _ in token_hits(line, needle) {
                    push(
                        &THREAD_SPAWN,
                        line0,
                        format!(
                            "{} outside the threads-allowed layer",
                            needle.trim_start_matches('.').trim_end_matches('(')
                        ),
                    );
                }
            }
        }

        // Determinism: OS entropy, everywhere including tests.
        for needle in ["thread_rng", "from_entropy", "OsRng"] {
            for _ in token_hits(line, needle) {
                push(
                    &UNSEEDED_RNG,
                    line0,
                    format!("{needle}: all randomness must be seeded and reproducible"),
                );
            }
        }

        // Determinism: unordered maps in render paths (non-test code).
        if scope.render && !in_test {
            for needle in ["HashMap", "HashSet"] {
                for _ in token_hits(line, needle) {
                    push(
                        &HASH_ITER,
                        line0,
                        format!("{needle} in a render path; use BTreeMap/sorted collections"),
                    );
                }
            }
        }

        // Panic-freedom in pipeline and ingest code.
        if (scope.panic_free || scope.ingest) && !in_test {
            for needle in [
                ".unwrap(",
                ".unwrap_err(",
                ".expect(",
                ".expect_err(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                for _ in token_hits(line, needle) {
                    let what = needle.trim_start_matches('.').trim_end_matches('(');
                    push(
                        &PANIC_PATH,
                        line0,
                        format!("{what} in panic-free code; return an error or degrade"),
                    );
                }
            }
        }

        // Ingest parsers: no data-derived slice indexing.
        if scope.ingest && !in_test {
            for at in index_sites(line) {
                push(
                    &SLICE_INDEX,
                    line0,
                    format!(
                        "slice indexing at col {}; use get()/destructuring in ingest code",
                        at + 1
                    ),
                );
            }
        }

        // Exit-code contract.
        for at in token_hits(line, "process::exit") {
            if !scope.exit_allowed {
                push(
                    &EXIT_CODE,
                    line0,
                    "process::exit outside the exit-code module; return a status instead"
                        .to_string(),
                );
            } else {
                // Even in the exit module, codes must be named constants.
                let rest = line[at + "process::exit".len()..].trim_start();
                if let Some(arg) = rest.strip_prefix('(') {
                    if arg.trim_start().starts_with(|c: char| c.is_ascii_digit()) {
                        push(
                            &EXIT_CODE,
                            line0,
                            "bare exit-code literal; use the named EXIT_* constants".to_string(),
                        );
                    }
                }
            }
        }

        // Library crates never print.
        if !scope.print_allowed && !in_test {
            for needle in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
                for _ in token_hits(line, needle) {
                    push(
                        &PRINT_IN_LIB,
                        line0,
                        format!("{needle} in a library crate; render to a String instead"),
                    );
                }
            }
        }
    }

    // Crate-root hygiene: one finding per missing attribute.
    if scope.crate_root {
        let normalized: String = src.code.chars().filter(|c| !c.is_whitespace()).collect();
        if !normalized.contains("#![deny(unsafe_code)]") {
            push(
                &CRATE_ROOT,
                0,
                "crate root missing #![deny(unsafe_code)]".to_string(),
            );
        }
        if !normalized.contains("#![warn(missing_docs") {
            push(
                &CRATE_ROOT,
                0,
                "crate root missing #![warn(missing_docs)]".to_string(),
            );
        }
    }

    findings
}

/// Byte offsets of direct index expressions in a scrubbed code line: an
/// identifier char, `)`, or `]` immediately followed by `[`. `vec![…]`,
/// attributes (`#[…]`), and array-type syntax (`[u8; 4]`) do not match.
fn index_sites(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for i in 1..bytes.len() {
        if bytes[i] == b'[' {
            let prev = bytes[i - 1];
            if is_ident(prev) || prev == b')' || prev == b']' {
                out.push(i);
            }
        }
    }
    out
}

/// Lint a `Cargo.toml`: every dependency in any `*dependencies*` section
/// must resolve offline — a workspace reference or an explicit `path`.
pub fn lint_manifest(path: &str, text: &str, cfg: &Config) -> Vec<Finding> {
    let sev = cfg.severity_of(OFFLINE_DEPS.id, OFFLINE_DEPS.default_severity);
    if sev == Severity::Allow {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_dep_section = name.trim().trim_matches('"').contains("dependencies");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `foo.workspace = true` and `foo = { workspace = true }` and
        // `foo = { path = "…" }` are offline; a bare version string or a
        // git/registry table is not.
        let offline = key.ends_with(".workspace")
            || value.contains("workspace = true")
            || value.contains("path =")
            || value.contains("path=");
        let looks_like_dep = value.starts_with('"') || value.starts_with('{');
        if looks_like_dep && !offline {
            findings.push(Finding {
                path: path.to_string(),
                line: idx + 1,
                rule: OFFLINE_DEPS.id.to_string(),
                severity: sev,
                message: format!(
                    "dependency {key:?} does not resolve offline (needs workspace/path)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn cfg() -> Config {
        Config::parse(
            "[paths]\nrender = [\"crates/x/src/render.rs\"]\nperf-exempt = [\"crates/x/src/perf.rs\"]\npanic-free = [\"crates/x/src\"]\ningest = [\"crates/x/src/parse.rs\"]\nexit-allowed = [\"crates/x/src/main.rs\"]\nprint-allowed = [\"crates/x/src/main.rs\"]\nthreads-allowed = [\"crates/x/src/perf.rs\"]\n",
        )
        .expect("config")
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_rust(path, &scrub(src), &cfg())
    }

    #[test]
    fn wall_clock_fires_outside_exempt_files_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(run("crates/x/src/render.rs", src).len(), 1);
        assert!(run("crates/x/src/perf.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let hits = run(
            "crates/x/src/a.rs",
            "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
        let hits = run(
            "crates/x/src/a.rs",
            "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "panic-path");
    }

    #[test]
    fn thread_spawn_fires_outside_allowed_layer_and_tests() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let hits = run("crates/x/src/a.rs", spawn);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "thread-spawn");
        assert!(run("crates/x/src/perf.rs", spawn).is_empty());
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let hits = run("crates/x/src/a.rs", scoped);
        assert_eq!(hits.len(), 2, "scope + spawn: {hits:?}");
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(run("crates/x/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn banned_tokens_in_strings_and_comments_do_not_fire() {
        let src = "// panic! is banned; Instant::now too\nfn f() -> &'static str { \"panic!(Instant::now)\" }\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt_from_panic_rules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn hash_maps_banned_only_in_render_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(run("crates/x/src/render.rs", src).len(), 1);
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn slice_index_fires_in_ingest_only() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(run("crates/x/src/parse.rs", src).len(), 1);
        assert!(run("crates/x/src/other.rs", src).is_empty());
        // vec![] and attributes are not index expressions.
        let ok = "#[derive(Debug)]\nstruct S;\nfn g() -> Vec<u8> { vec![1, 2] }\n";
        assert!(run("crates/x/src/parse.rs", ok).is_empty());
    }

    #[test]
    fn exit_code_rules() {
        let src = "fn f() { std::process::exit(3); }\n";
        let hits = run("crates/x/src/a.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        // In the exit module, named constants are fine, literals are not.
        assert_eq!(run("crates/x/src/main.rs", src).len(), 1);
        assert!(run(
            "crates/x/src/main.rs",
            "fn f() { std::process::exit(CODE); }\n"
        )
        .is_empty());
    }

    #[test]
    fn prints_banned_outside_bins() {
        assert_eq!(
            run("crates/x/src/a.rs", "fn f() { println!(\"x\"); }\n").len(),
            1
        );
        assert!(run("crates/x/src/main.rs", "fn f() { println!(\"x\"); }\n").is_empty());
    }

    #[test]
    fn pragma_suppresses_with_justification_only() {
        let ok = "fn f() {\n    // lint:allow(panic-path): poisoned mutex is unrecoverable\n    foo.lock().unwrap();\n}\n";
        assert!(run("crates/x/src/a.rs", ok).is_empty());
        let trailing = "fn f() { foo.lock().unwrap(); } // lint:allow(panic-path): fine here\n";
        assert!(run("crates/x/src/a.rs", trailing).is_empty());
        let bare = "fn f() {\n    // lint:allow(panic-path)\n    foo.lock().unwrap();\n}\n";
        let hits = run("crates/x/src/a.rs", bare);
        assert_eq!(
            hits.len(),
            2,
            "bare pragma + unsuppressed finding: {hits:?}"
        );
        assert!(hits.iter().any(|f| f.rule == "bare-allow"));
        let unknown = "// lint:allow(no-such-rule): because\nfn f() {}\n";
        let hits = run("crates/x/src/a.rs", unknown);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "bare-allow");
    }

    #[test]
    fn crate_root_requires_hygiene_attrs() {
        let hits = run("crates/x/src/lib.rs", "//! docs\n#![warn(missing_docs)]\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unsafe_code"));
        let clean = "//! docs\n#![warn(missing_docs)]\n#![deny(unsafe_code)]\n";
        assert!(run("crates/x/src/lib.rs", clean).is_empty());
    }

    #[test]
    fn manifest_rule_flags_registry_and_git_deps() {
        let cfg = cfg();
        let bad = "[dependencies]\nserde = \"1.0\"\nrayon = { version = \"1.8\" }\nok = { path = \"vendor/ok\" }\nws.workspace = true\n";
        let hits = lint_manifest("Cargo.toml", bad, &cfg);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|f| f.rule == "offline-deps"));
        let good = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[dependencies]\na = { path = \"../a\" }\nb.workspace = true\n[dev-dependencies]\nc = { workspace = true, features = [\"f\"] }\n";
        assert!(lint_manifest("Cargo.toml", good, &cfg).is_empty());
    }

    #[test]
    fn severity_override_to_warn_and_allow() {
        let mut c = cfg();
        c.severity.insert("panic-path".into(), Severity::Warn);
        let hits = lint_rust(
            "crates/x/src/a.rs",
            &scrub("fn f(o: Option<u8>) { o.unwrap(); }\n"),
            &c,
        );
        assert_eq!(hits[0].severity, Severity::Warn);
        c.severity.insert("panic-path".into(), Severity::Allow);
        let hits = lint_rust(
            "crates/x/src/a.rs",
            &scrub("fn f(o: Option<u8>) { o.unwrap(); }\n"),
            &c,
        );
        assert!(hits.is_empty());
    }
}
