//! `lint.toml` — the checked-in declaration of which paths carry which
//! invariants.
//!
//! The build is offline, so this module parses the needed TOML subset
//! itself: `[section]` headers, `key = "string"`, and
//! `key = ["a", "b", …]` arrays (single- or multi-line). Anything else in
//! the file is a configuration error, reported with a line number — the
//! config is part of the checked invariant surface and must not rot
//! silently.

use std::collections::BTreeMap;

/// How hard a rule's findings hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled: findings are dropped.
    Allow,
    /// Reported, but does not fail the run.
    Warn,
    /// Reported and fails the run (exit 1).
    Deny,
}

impl Severity {
    /// Parse a severity keyword.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }

    /// The keyword form.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes (relative, `/`-separated) excluded from the walk.
    pub skip: Vec<String>,
    /// Modules that render artifact text: sorted-iteration territory.
    pub render_paths: Vec<String>,
    /// Files allowed to read the wall clock (the timing layer itself).
    pub perf_exempt: Vec<String>,
    /// Path prefixes under the panic-freedom contract.
    pub panic_free: Vec<String>,
    /// Ingest parsers: panic-freedom plus the slice-indexing ban.
    pub ingest_paths: Vec<String>,
    /// Files allowed to call `process::exit` / own exit-code literals.
    pub exit_allowed: Vec<String>,
    /// Files allowed to print (binary entry points).
    pub print_allowed: Vec<String>,
    /// Files/dirs allowed to spawn threads (the parallel engine and the
    /// serving layer); everything else must stay single-threaded.
    pub threads_allowed: Vec<String>,
    /// Pipeline entry points for panic-reachability, as `(file, fn-name)`
    /// pairs parsed from `"path/to/file.rs::fn_name"` declarations.
    pub entry_points: Vec<(String, String)>,
    /// Files whose functions are artifact-renderer sinks for the
    /// determinism-taint analysis.
    pub sinks: Vec<String>,
    /// Path prefixes whose `pub` items the dead-pub analysis audits.
    pub dead_pub: Vec<String>,
    /// Per-rule severity overrides.
    pub severity: BTreeMap<String, Severity>,
}

impl Config {
    /// Parse `lint.toml` text. Errors carry a 1-based line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if value.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(format!(
                        "lint.toml:{lineno}: unterminated array for {key:?}"
                    ));
                }
            }
            cfg.apply(&section, key, &value, lineno)?;
        }
        Ok(cfg)
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: &str,
        lineno: usize,
    ) -> Result<(), String> {
        if let Some(rule) = section.strip_prefix("rules.") {
            return match key {
                "severity" => {
                    let word = parse_string(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: severity must be a string"))?;
                    let sev = Severity::parse(&word).ok_or_else(|| {
                        format!("lint.toml:{lineno}: unknown severity {word:?} (allow|warn|deny)")
                    })?;
                    self.severity.insert(rule.to_string(), sev);
                    Ok(())
                }
                other => Err(format!(
                    "lint.toml:{lineno}: unknown key {other:?} in [{section}]"
                )),
            };
        }
        if section == "interprocedural" && key == "entry-points" {
            let entries = parse_string_array(value).ok_or_else(|| {
                format!("lint.toml:{lineno}: entry-points must be an array of strings")
            })?;
            self.entry_points.clear();
            for e in entries {
                let Some((file, name)) = e.rsplit_once("::") else {
                    return Err(format!(
                        "lint.toml:{lineno}: entry point {e:?} must be \"path/to/file.rs::fn_name\""
                    ));
                };
                self.entry_points.push((file.to_string(), name.to_string()));
            }
            return Ok(());
        }
        let target = match (section, key) {
            ("paths", "skip") => &mut self.skip,
            ("paths", "render") => &mut self.render_paths,
            ("paths", "perf-exempt") => &mut self.perf_exempt,
            ("paths", "panic-free") => &mut self.panic_free,
            ("paths", "ingest") => &mut self.ingest_paths,
            ("paths", "exit-allowed") => &mut self.exit_allowed,
            ("paths", "print-allowed") => &mut self.print_allowed,
            ("paths", "threads-allowed") => &mut self.threads_allowed,
            ("interprocedural", "sinks") => &mut self.sinks,
            ("interprocedural", "dead-pub") => &mut self.dead_pub,
            _ => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown key {key:?} in section [{section}]"
                ))
            }
        };
        *target = parse_string_array(value)
            .ok_or_else(|| format!("lint.toml:{lineno}: {key} must be an array of strings"))?;
        Ok(())
    }

    /// Effective severity for `rule`, given its built-in default.
    pub fn severity_of(&self, rule: &str, default: Severity) -> Severity {
        self.severity.get(rule).copied().unwrap_or(default)
    }

    /// Is `path` under one of the configured `prefixes`? Exact file paths
    /// and directory prefixes both match; paths are `/`-normalized.
    pub fn path_in(path: &str, prefixes: &[String]) -> bool {
        prefixes
            .iter()
            .any(|p| path == p || path.starts_with(&format!("{}/", p.trim_end_matches('/'))))
    }
}

/// Drop a `#`-to-end-of-line comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string.
fn parse_string(value: &str) -> Option<String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|s| s.to_string())
}

/// Parse `["a", "b", …]` (trailing comma tolerated).
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let v = value.trim();
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_severities() {
        let cfg = Config::parse(
            "# header\n[paths]\nskip = [\"vendor\", \"target\"] # trailing\nrender = [\n  \"crates/core/src/report.rs\",\n  \"crates/experiments/src/atlas_exps.rs\",\n]\n\n[rules.slice-index]\nseverity = \"warn\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.skip, vec!["vendor", "target"]);
        assert_eq!(cfg.render_paths.len(), 2);
        assert_eq!(
            cfg.severity_of("slice-index", Severity::Deny),
            Severity::Warn
        );
        assert_eq!(
            cfg.severity_of("wall-clock", Severity::Deny),
            Severity::Deny
        );
    }

    #[test]
    fn parses_interprocedural_section() {
        let cfg = Config::parse(
            "[interprocedural]\nentry-points = [\"crates/experiments/src/main.rs::main\"]\nsinks = [\"crates/core/src/report.rs\"]\ndead-pub = [\"crates/core/src\"]\n",
        )
        .expect("parses");
        assert_eq!(
            cfg.entry_points,
            vec![(
                "crates/experiments/src/main.rs".to_string(),
                "main".to_string()
            )]
        );
        assert_eq!(cfg.sinks, vec!["crates/core/src/report.rs"]);
        assert_eq!(cfg.dead_pub, vec!["crates/core/src"]);
        let err = Config::parse("[interprocedural]\nentry-points = [\"no-separator\"]\n")
            .expect_err("entry point without ::");
        assert!(err.contains("no-separator"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = Config::parse("[paths]\nbogus = []\n").expect_err("unknown key");
        assert!(err.contains("lint.toml:2"), "{err}");
        let err = Config::parse("[rules.x]\nseverity = \"fatal\"\n").expect_err("bad severity");
        assert!(err.contains("fatal"), "{err}");
    }

    #[test]
    fn path_prefix_matching() {
        let prefixes = vec!["crates/core/src".to_string(), "lone.rs".to_string()];
        assert!(Config::path_in("crates/core/src/stats.rs", &prefixes));
        assert!(Config::path_in("lone.rs", &prefixes));
        assert!(!Config::path_in("crates/core/srcx/f.rs", &prefixes));
        assert!(!Config::path_in("crates/core", &prefixes));
    }
}
