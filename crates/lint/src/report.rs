//! Finding renderers: human-readable text and a machine-readable JSON
//! document for CI.
//!
//! The build is offline (no serde), so — like `core::perf` — the JSON
//! schema carries its own writer and a parser for exactly this layout,
//! letting fixture tests round-trip the document without a dependency.

use crate::config::Severity;
use crate::rules::Finding;

/// Schema tag written into every JSON report, bumped on layout changes.
pub const LINT_SCHEMA: &str = "dynamips-lint-v1";

/// Render findings as `path:line: severity[rule] message` lines plus a
/// one-line summary, ready for a terminal or CI log.
pub fn render_text(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}: {}[{}] {}",
            f.path,
            f.line,
            f.severity.as_str(),
            f.rule,
            f.message
        );
    }
    let denies = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .count();
    if findings.is_empty() {
        out.push_str("lint: clean\n");
    } else {
        let _ = writeln!(out, "lint: {denies} deny, {warns} warn");
    }
    out
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Serialize findings as the `dynamips-lint-v1` JSON document.
pub fn to_json(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let denies = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .count();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{LINT_SCHEMA}\",");
    let _ = writeln!(out, "  \"deny\": {denies},");
    let _ = writeln!(out, "  \"warn\": {warns},");
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}{comma}",
            escape(&f.path),
            f.line,
            escape(&f.rule),
            f.severity.as_str(),
            escape(&f.message)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialize findings as a minimal SARIF 2.1.0 log, so standard tooling
/// (GitHub code scanning, IDE SARIF viewers) renders them as annotations.
/// Deny maps to `error`, warn to `warning`; rule metadata comes from
/// [`ALL_RULES`](crate::rules::ALL_RULES).
pub fn to_sarif(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dynamips-lint\",\n");
    let _ = writeln!(out, "          \"version\": \"{LINT_SCHEMA}\",");
    out.push_str("          \"rules\": [\n");
    let rules = crate::rules::ALL_RULES;
    for (i, r) in rules.iter().enumerate() {
        let comma = if i + 1 == rules.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{comma}",
            escape(r.id),
            escape(r.summary)
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let level = match f.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
            Severity::Allow => "note",
        };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{comma}",
            escape(&f.rule),
            escape(&f.message),
            escape(&f.path),
            f.line.max(1)
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Parse a document produced by [`to_json`]. Returns an error string
/// naming the first field that failed.
pub fn parse_json(json: &str) -> Result<Vec<Finding>, String> {
    let schema = field(json, "schema").ok_or("missing schema")?;
    if schema != LINT_SCHEMA {
        return Err(format!("unknown schema {schema:?}"));
    }
    let start = json.find("\"findings\": [").ok_or("missing findings")? + "\"findings\": [".len();
    let body = &json[start..];
    let end = body.rfind(']').ok_or("unterminated findings")?;
    let mut out = Vec::new();
    for obj in body[..end].split("\n    {").skip(1) {
        let line = field_raw(obj, "line")
            .ok_or("missing line")?
            .parse()
            .map_err(|e| format!("line: {e}"))?;
        let sev_word = field(obj, "severity").ok_or("missing severity")?;
        let severity =
            Severity::parse(&sev_word).ok_or_else(|| format!("bad severity {sev_word:?}"))?;
        out.push(Finding {
            path: field(obj, "path").ok_or("missing path")?,
            line,
            rule: field(obj, "rule").ok_or("missing rule")?,
            severity,
            message: field(obj, "message").ok_or("missing message")?,
        });
    }
    Ok(out)
}

/// Extract the raw token after `"key":` up to the next unquoted `,` / `}`.
pub(crate) fn field_raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = json.find(&tag)? + tag.len();
    let rest = json[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // A string: scan to the closing unescaped quote, return with quotes.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(&rest[..i + 2]);
            }
        }
        None
    } else {
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Extract and unescape a string field.
pub(crate) fn field(json: &str, key: &str) -> Option<String> {
    let raw = field_raw(json, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(unescape(inner))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                path: "crates/a/src/f.rs".into(),
                line: 7,
                rule: "panic-path".into(),
                severity: Severity::Deny,
                message: "unwrap in panic-free code; return an error or degrade".into(),
            },
            Finding {
                path: "crates/b/src/g.rs".into(),
                line: 2,
                rule: "slice-index".into(),
                severity: Severity::Warn,
                message: "slice indexing with \"quotes\" and\nnewline".into(),
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let fs = sample();
        let json = to_json(&fs);
        assert!(json.contains("dynamips-lint-v1"));
        assert!(json.contains("\"deny\": 1"));
        let back = parse_json(&json).expect("parses");
        assert_eq!(back, fs);
    }

    #[test]
    fn empty_report_round_trips() {
        let json = to_json(&[]);
        assert_eq!(parse_json(&json).expect("parses"), Vec::new());
        assert!(render_text(&[]).contains("clean"));
    }

    #[test]
    fn text_report_shape() {
        let text = render_text(&sample());
        assert!(text.contains("crates/a/src/f.rs:7: deny[panic-path]"));
        assert!(text.contains("1 deny, 1 warn"));
    }

    #[test]
    fn sarif_log_shape() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"dynamips-lint\""));
        assert!(sarif.contains("\"ruleId\": \"panic-path\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"level\": \"warning\""));
        assert!(sarif.contains("\"startLine\": 7"));
        // Every rule id ships as driver metadata.
        for r in crate::rules::ALL_RULES {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        // Escaped payloads stay valid JSON (quotes and newlines escaped).
        assert!(sarif.contains("\\\"quotes\\\" and\\nnewline"));
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(parse_json("{}").is_err());
        let bad = to_json(&sample()).replace("dynamips-lint-v1", "v0");
        assert!(parse_json(&bad).is_err());
    }
}
