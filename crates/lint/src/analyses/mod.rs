//! Interprocedural analyses over the workspace call graph.
//!
//! The per-file rules in [`crate::rules`] see one line at a time; the
//! analyses here see the whole workspace: [`panic_reach`] walks the call
//! graph from the declared pipeline entry points and reports every panic
//! site on a reachable path (with the shortest chain, so the report reads
//! `entry → … → site`), [`determinism`] propagates wall-clock, unseeded-RNG
//! and hash-iteration taint backwards from the declared artifact-renderer
//! sinks, and [`dead_pub`] flags `pub` items no other crate references.
//! All three honour `lint:allow` pragmas on the site line and the
//! severity overrides in `lint.toml`.

pub mod dead_pub;
pub mod determinism;
pub mod panic_reach;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::items::FileItems;
use crate::rules::{self, Finding};
use crate::scrub::ScrubbedSource;
use std::collections::BTreeMap;

/// One scrubbed-and-collected source file, the unit the analyses consume.
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// The scrubbed views.
    pub src: ScrubbedSource,
    /// Collected functions and `pub` items.
    pub items: FileItems,
}

/// Run every interprocedural analysis. `files` must be sorted by path
/// (the engine guarantees it), so node ids — and therefore chains and
/// finding order — are deterministic.
pub fn run(files: &[SourceFile], cfg: &Config) -> Result<Vec<Finding>, String> {
    let collected: Vec<(String, FileItems)> = files
        .iter()
        .map(|f| (f.path.clone(), f.items.clone()))
        .collect();
    let graph = CallGraph::build(&collected);
    let allows: BTreeMap<&str, Vec<rules::Allow>> = files
        .iter()
        .map(|f| (f.path.as_str(), rules::file_allows(&f.path, &f.src, cfg)))
        .collect();

    let mut findings = Vec::new();
    findings.extend(panic_reach::run(&graph, cfg, &allows)?);
    findings.extend(determinism::run(&graph, cfg, &allows));
    findings.extend(dead_pub::run(files, cfg, &allows));
    Ok(findings)
}

/// Is `path` a tests/benches/examples file (exempt from the analyses)?
pub(crate) fn is_test_path(path: &str) -> bool {
    path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("benches/")
}

/// Is the site at `line0` suppressed by a justified pragma for any of
/// `rule_ids` in this file?
pub(crate) fn site_allowed(
    allows: &BTreeMap<&str, Vec<rules::Allow>>,
    path: &str,
    line0: usize,
    rule_ids: &[&str],
) -> bool {
    allows.get(path).is_some_and(|list| {
        list.iter()
            .any(|a| rule_ids.iter().any(|r| a.covers(line0, r)))
    })
}
