//! Dead-pub: `pub` items in the audited crates that no other crate ever
//! references.
//!
//! `pub` is a promise — it widens the API surface other crates may grow
//! to depend on, and it exempts the item from rustc's dead-code lint. An
//! item that nothing outside its own crate names is either internal (make
//! it `pub(crate)` so the compiler resumes watching it) or genuinely dead
//! (remove it). The reference scan is name-based over scrubbed code, so
//! doc prose and string literals never count as uses; a file in the same
//! crate's `tests/`/`benches/`/`examples/` directories counts as an
//! *external* reference, because integration tests consume the crate
//! through its public API exactly like a foreign crate would. Name
//! collisions across crates make the scan conservative: a shared name is
//! treated as referenced, never falsely flagged.

use super::{is_test_path, site_allowed, SourceFile};
use crate::config::{Config, Severity};
use crate::rules::{Allow, Finding, DEAD_PUB};
use std::collections::BTreeMap;

/// The crate-directory prefix a file belongs to (`crates/<name>` or the
/// root crate, `""`).
fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return &path[..("crates/".len() + slash)];
        }
    }
    ""
}

/// Word-boundary occurrence of `name` anywhere in `code`.
fn mentions_word(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after_ok = bytes
            .get(at + name.len())
            .is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
        if before_ok && after_ok {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Run the analysis over every file under the configured `dead-pub`
/// prefixes.
pub(crate) fn run(
    files: &[SourceFile],
    cfg: &Config,
    allows: &BTreeMap<&str, Vec<Allow>>,
) -> Vec<Finding> {
    let sev = cfg.severity_of(DEAD_PUB.id, DEAD_PUB.default_severity);
    if sev == Severity::Allow || cfg.dead_pub.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    for f in files {
        if !Config::path_in(&f.path, &cfg.dead_pub) || is_test_path(&f.path) {
            continue;
        }
        let own_crate = crate_of(&f.path);
        for item in &f.items.pubs {
            if f.src.is_test_line(item.line) {
                continue;
            }
            if site_allowed(allows, &f.path, item.line, &[DEAD_PUB.id]) {
                continue;
            }
            let referenced_externally = files.iter().any(|other| {
                let external = crate_of(&other.path) != own_crate || is_test_path(&other.path);
                external && mentions_word(&other.src.code, &item.name)
            });
            if !referenced_externally {
                let crate_label = if own_crate.is_empty() {
                    "the root crate".to_string()
                } else {
                    format!("`{own_crate}`")
                };
                findings.push(Finding {
                    path: f.path.clone(),
                    line: item.line + 1,
                    rule: DEAD_PUB.id.to_string(),
                    severity: sev,
                    message: format!(
                        "pub {} `{}` never referenced outside {crate_label}; make it pub(crate) or remove it",
                        item.kind, item.name
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::collect_items;
    use crate::scrub::scrub;

    fn run_dead(specs: &[(&str, &str)], cfg_text: &str) -> Vec<Finding> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| {
                let src = scrub(s);
                let items = collect_items(&src);
                SourceFile {
                    path: p.to_string(),
                    src,
                    items,
                }
            })
            .collect();
        let cfg = Config::parse(cfg_text).expect("cfg");
        super::super::run(&files, &cfg)
            .expect("runs")
            .into_iter()
            .filter(|f| f.rule == DEAD_PUB.id)
            .collect()
    }

    #[test]
    fn unreferenced_pub_item_is_flagged_referenced_is_not() {
        let found = run_dead(
            &[
                (
                    "crates/core/src/lib.rs",
                    "pub fn used_elsewhere() {}\npub fn orphan() {}\n",
                ),
                (
                    "crates/experiments/src/lib.rs",
                    "pub fn go() { dynamips_core::used_elsewhere(); }\n",
                ),
            ],
            "[interprocedural]\ndead-pub = [\"crates/core/src\"]\n",
        );
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0].message.contains("`orphan`"));
    }

    #[test]
    fn integration_tests_count_as_external_references() {
        let found = run_dead(
            &[
                ("crates/core/src/lib.rs", "pub fn tested_only() {}\n"),
                (
                    "crates/core/tests/it.rs",
                    "fn t() { dynamips_core::tested_only(); }\n",
                ),
            ],
            "[interprocedural]\ndead-pub = [\"crates/core/src\"]\n",
        );
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_count() {
        let found = run_dead(
            &[
                ("crates/core/src/lib.rs", "pub fn orphan() {}\n"),
                (
                    "crates/cdn/src/lib.rs",
                    "// orphan is mentioned in prose only\npub fn f() -> &'static str { \"orphan\" }\n",
                ),
            ],
            "[interprocedural]\ndead-pub = [\"crates/core/src\"]\n",
        );
        assert_eq!(found.len(), 1, "{found:#?}");
    }

    #[test]
    fn allow_pragma_suppresses() {
        let found = run_dead(
            &[(
                "crates/core/src/lib.rs",
                "// lint:allow(dead-pub): staged API for the next PR\npub fn future() {}\n",
            )],
            "[interprocedural]\ndead-pub = [\"crates/core/src\"]\n",
        );
        assert!(found.is_empty(), "{found:#?}");
    }
}
