//! Determinism taint: nondeterminism sources reachable from an artifact
//! renderer.
//!
//! The byte-identical-artifacts guarantee (PR 2) holds only if no call
//! path from a renderer reaches wall-clock reads, unseeded randomness, or
//! unordered-map iteration. The per-file rules ban those tokens in fixed
//! scopes; this analysis propagates them through the call graph, so a
//! helper three crates away that quietly reads `Instant::now` is caught
//! the moment any renderer can reach it. Sources inside the declared
//! timing layer (`perf-exempt`) are the sanctioned exception for
//! wall-clock reads, and hash-order mentions inside render files are
//! skipped — the per-file `hash-iter` rule already reports those.

use super::{is_test_path, site_allowed};
use crate::callgraph::CallGraph;
use crate::config::{Config, Severity};
use crate::items::TaintKind;
use crate::rules::{Allow, Finding, DETERMINISM_TAINT, HASH_ITER, UNSEEDED_RNG, WALL_CLOCK};
use std::collections::BTreeMap;

/// Run the analysis: BFS from every `pub` function defined in a sink
/// file — the renderer API surface; private helpers there are reachable
/// through it or dead — and report each reachable taint site with its
/// shortest chain.
pub(crate) fn run(
    graph: &CallGraph,
    cfg: &Config,
    allows: &BTreeMap<&str, Vec<Allow>>,
) -> Vec<Finding> {
    let sev = cfg.severity_of(DETERMINISM_TAINT.id, DETERMINISM_TAINT.default_severity);
    if sev == Severity::Allow || cfg.sinks.is_empty() {
        return Vec::new();
    }
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            Config::path_in(&n.file, &cfg.sinks)
                && n.item.is_pub
                && !n.item.is_test
                && !is_test_path(&n.file)
        })
        .map(|(id, _)| id)
        .collect();

    let parents = graph.bfs(&roots);
    let mut findings = Vec::new();
    for &id in parents.keys() {
        let node = &graph.nodes[id];
        if node.item.is_test || is_test_path(&node.file) {
            continue;
        }
        let perf_exempt = Config::path_in(&node.file, &cfg.perf_exempt);
        let in_render = Config::path_in(&node.file, &cfg.render_paths);
        for site in &node.item.taints {
            let token_rule = match site.kind {
                TaintKind::WallClock => {
                    if perf_exempt {
                        continue; // the sanctioned timing layer
                    }
                    WALL_CLOCK.id
                }
                TaintKind::UnseededRng => UNSEEDED_RNG.id,
                TaintKind::HashOrder => {
                    if in_render {
                        continue; // the per-file hash-iter rule owns these
                    }
                    HASH_ITER.id
                }
            };
            if site_allowed(
                allows,
                &node.file,
                site.line,
                &[DETERMINISM_TAINT.id, token_rule],
            ) {
                continue;
            }
            let chain = graph.chain(&parents, id).join(" → ");
            findings.push(Finding {
                path: node.file.clone(),
                line: site.line + 1,
                rule: DETERMINISM_TAINT.id.to_string(),
                severity: sev,
                message: format!(
                    "`{}` ({}) reachable from artifact renderer: {chain}",
                    site.token,
                    site.kind.as_str()
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::SourceFile;
    use crate::config::Config;
    use crate::items::collect_items;
    use crate::rules::DETERMINISM_TAINT;
    use crate::scrub::scrub;

    fn run_taint(specs: &[(&str, &str)], cfg_text: &str) -> Vec<crate::rules::Finding> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| {
                let src = scrub(s);
                let items = collect_items(&src);
                SourceFile {
                    path: p.to_string(),
                    src,
                    items,
                }
            })
            .collect();
        let cfg = Config::parse(cfg_text).expect("cfg");
        super::super::run(&files, &cfg)
            .expect("runs")
            .into_iter()
            .filter(|f| f.rule == DETERMINISM_TAINT.id)
            .collect()
    }

    #[test]
    fn clock_two_calls_from_renderer_is_flagged() {
        let found = run_taint(
            &[
                (
                    "src/render.rs",
                    "pub fn table() -> String { format!(\"{}\", mid()) }\n",
                ),
                (
                    "src/helpers.rs",
                    "pub fn mid() -> u64 { leaf() }\npub fn leaf() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n",
                ),
            ],
            "[interprocedural]\nsinks = [\"src/render.rs\"]\n",
        );
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].path, "src/helpers.rs");
        assert_eq!(
            found[0].message,
            "`Instant::now` (wall-clock) reachable from artifact renderer: table → mid → leaf"
        );
    }

    #[test]
    fn perf_exempt_layer_is_not_a_wall_clock_source() {
        let found = run_taint(
            &[
                (
                    "src/render.rs",
                    "pub fn table() -> String { let _ = stamp(); String::new() }\n",
                ),
                (
                    "src/perf.rs",
                    "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
                ),
            ],
            "[paths]\nperf-exempt = [\"src/perf.rs\"]\n[interprocedural]\nsinks = [\"src/render.rs\"]\n",
        );
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn unreachable_sources_do_not_fire() {
        let found = run_taint(
            &[
                (
                    "src/render.rs",
                    "pub fn table() -> String { String::new() }\n",
                ),
                (
                    "src/other.rs",
                    "pub fn noise() -> u8 { let mut _r = rand::thread_rng(); 0 }\n",
                ),
            ],
            "[interprocedural]\nsinks = [\"src/render.rs\"]\n",
        );
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn hash_order_reached_transitively_is_flagged() {
        let found = run_taint(
            &[
                (
                    "src/render.rs",
                    "pub fn table() -> String { format!(\"{}\", count()) }\n",
                ),
                (
                    "src/agg.rs",
                    "pub fn count() -> usize { let m: HashMap<u8, u8> = HashMap::new(); m.len() }\n",
                ),
            ],
            "[interprocedural]\nsinks = [\"src/render.rs\"]\n",
        );
        assert_eq!(found.len(), 2, "one per HashMap mention: {found:#?}");
        assert!(found[0].message.contains("hash-order"));
    }
}
