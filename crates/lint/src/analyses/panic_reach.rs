//! Panic-reachability: every panic site on a call path from a declared
//! pipeline entry point, reported with the shortest chain.
//!
//! The per-file `panic-path` rule already bans panicking tokens inside
//! the declared panic-free scope; this analysis closes the transitive
//! gap: an `expect` in a mechanism crate (outside that scope) that a
//! pipeline entry point can reach is a latent abort of `dynamips run`,
//! invisible to any per-line rule. Slice-index sites are only counted in
//! the ingest scope, where indexing data-derived slices is the concrete
//! hazard — a constant index into a fixed array elsewhere is not worth a
//! baseline entry.

#[cfg(test)]
use super::SourceFile;
use super::{is_test_path, site_allowed};
use crate::callgraph::CallGraph;
use crate::config::{Config, Severity};
use crate::rules::{Allow, Finding, PANIC_PATH, PANIC_REACH};
use std::collections::BTreeMap;

/// Run the analysis. Fails (as a configuration error) if a declared
/// entry point does not exist — a stale `lint.toml` must not silently
/// disable the strongest guarantee.
pub(crate) fn run(
    graph: &CallGraph,
    cfg: &Config,
    allows: &BTreeMap<&str, Vec<Allow>>,
) -> Result<Vec<Finding>, String> {
    let sev = cfg.severity_of(PANIC_REACH.id, PANIC_REACH.default_severity);
    if sev == Severity::Allow || cfg.entry_points.is_empty() {
        return Ok(Vec::new());
    }
    let mut roots = Vec::new();
    for (file, name) in &cfg.entry_points {
        let ids = graph.find(file, name);
        if ids.is_empty() {
            return Err(format!(
                "lint.toml declares entry point {file}::{name}, but no such fn exists"
            ));
        }
        roots.extend(ids);
    }

    let parents = graph.bfs(&roots);
    let mut findings = Vec::new();
    for &id in parents.keys() {
        let node = &graph.nodes[id];
        if node.item.is_test || is_test_path(&node.file) {
            continue;
        }
        let in_ingest = Config::path_in(&node.file, &cfg.ingest_paths);
        for site in &node.item.panics {
            if site.token == "index" && !in_ingest {
                continue;
            }
            if site_allowed(
                allows,
                &node.file,
                site.line,
                &[PANIC_REACH.id, PANIC_PATH.id],
            ) {
                continue;
            }
            let chain = graph.chain(&parents, id).join(" → ");
            findings.push(Finding {
                path: node.file.clone(),
                line: site.line + 1,
                rule: PANIC_REACH.id.to_string(),
                severity: sev,
                message: format!("`{}` reachable from pipeline entry: {chain}", site.token),
            });
        }
    }
    Ok(findings)
}

/// Convenience for tests: run over raw files.
#[cfg(test)]
pub(crate) fn run_on(files: &[SourceFile], cfg: &Config) -> Result<Vec<Finding>, String> {
    super::run(files, cfg).map(|fs| {
        fs.into_iter()
            .filter(|f| f.rule == PANIC_REACH.id)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::collect_items;
    use crate::scrub::scrub;

    fn files(specs: &[(&str, &str)]) -> Vec<SourceFile> {
        specs
            .iter()
            .map(|(p, s)| {
                let src = scrub(s);
                let items = collect_items(&src);
                SourceFile {
                    path: p.to_string(),
                    src,
                    items,
                }
            })
            .collect()
    }

    fn cfg(entry: &str) -> Config {
        Config::parse(&format!(
            "[interprocedural]\nentry-points = [\"{entry}\"]\n"
        ))
        .expect("cfg")
    }

    #[test]
    fn two_hop_transitive_panic_reported_with_chain() {
        let fs = files(&[
            (
                "src/main.rs",
                "fn main() { step_one(); }\nfn step_one() { step_two(); }\n",
            ),
            (
                "src/deep.rs",
                "pub fn step_two() -> u32 { Some(1).unwrap() }\npub fn unrelated() { panic!(\"never reached\"); }\n",
            ),
        ]);
        let found = run_on(&fs, &cfg("src/main.rs::main")).expect("runs");
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].path, "src/deep.rs");
        assert_eq!(
            found[0].message,
            "`unwrap` reachable from pipeline entry: main → step_one → step_two"
        );
    }

    #[test]
    fn allow_pragma_on_site_suppresses() {
        let fs = files(&[(
            "src/main.rs",
            "fn main() { helper(); }\nfn helper() {\n    // lint:allow(panic-path): exercised invariant\n    Some(1).unwrap();\n}\n",
        )]);
        let found = run_on(&fs, &cfg("src/main.rs::main")).expect("runs");
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn missing_entry_point_is_a_config_error() {
        let fs = files(&[("src/main.rs", "fn main() {}\n")]);
        let err = run_on(&fs, &cfg("src/main.rs::no_such_fn")).expect_err("must fail");
        assert!(err.contains("no_such_fn"), "{err}");
    }

    #[test]
    fn test_fns_and_test_paths_are_exempt() {
        let fs = files(&[
            (
                "src/main.rs",
                "fn main() { shared(); }\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
            ),
            ("src/lib.rs", "pub fn shared() {}\n"),
            ("tests/it.rs", "fn main() { Some(1).unwrap(); }\n"),
        ]);
        let found = run_on(&fs, &cfg("src/main.rs::main")).expect("runs");
        assert!(found.is_empty(), "{found:#?}");
    }
}
