//! Workspace walker and rule dispatcher.
//!
//! The engine walks every `.rs` file and every `Cargo.toml` under the
//! workspace root (deterministically: directory entries are sorted, the
//! configured skip list plus `target/` and dot-directories are pruned),
//! scrubs each source file, runs the per-file rule set, then feeds the
//! collected items into the interprocedural analyses (call-graph
//! panic-reachability, determinism taint, dead-pub). Findings come back
//! sorted by `(path, line, rule)` so output is stable across platforms
//! and thread counts. [`lint_workspace_with_overrides`] lets tests
//! replace individual file contents in memory — that is how the
//! injected-fault meta-tests prove a transitive panic or a tainted
//! helper is caught under the real workspace configuration.

use crate::analyses::{self, SourceFile};
use crate::config::{Config, Severity};
use crate::items;
use crate::rules::{self, Finding};
use crate::scrub;
use std::path::{Path, PathBuf};

/// Lint a single in-memory file, dispatching on its file name. `rel_path`
/// decides scope (render path, ingest, …), so tests can lint synthetic
/// content as if it lived anywhere in the tree.
pub fn lint_path_content(rel_path: &str, content: &str, cfg: &Config) -> Vec<Finding> {
    if rel_path.ends_with("Cargo.toml") {
        rules::lint_manifest(rel_path, content, cfg)
    } else if rel_path.ends_with(".rs") {
        rules::lint_rust(rel_path, &scrub::scrub(content), cfg)
    } else {
        Vec::new()
    }
}

/// Walk `root` and lint the whole workspace: per-file rules plus the
/// interprocedural analyses. Returns findings sorted by
/// `(path, line, rule)`. I/O problems are reported as strings (path +
/// error) rather than panics.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    lint_workspace_with_overrides(root, cfg, &[])
}

/// [`lint_workspace`], but with some file contents replaced in memory.
/// `overrides` maps workspace-relative paths to replacement text; a path
/// that does not exist on disk is linted as a new file. This is the
/// fault-injection surface for the meta-tests: inject a transitive panic
/// or a tainted helper into real modules without touching the tree.
pub fn lint_workspace_with_overrides(
    root: &Path,
    cfg: &Config,
    overrides: &[(String, String)],
) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_files(root, root, cfg, &mut files)?;
    for (rel, _) in overrides {
        if !files.contains(rel) && !Config::path_in(rel, &cfg.skip) {
            files.push(rel.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let mut sources: Vec<SourceFile> = Vec::new();
    for rel in &files {
        let content = match overrides.iter().find(|(p, _)| p == rel) {
            Some((_, text)) => text.clone(),
            None => {
                let full = root.join(rel);
                std::fs::read_to_string(&full).map_err(|e| format!("{}: {e}", full.display()))?
            }
        };
        if rel.ends_with("Cargo.toml") {
            findings.extend(rules::lint_manifest(rel, &content, cfg));
        } else if rel.ends_with(".rs") {
            let src = scrub::scrub(&content);
            findings.extend(rules::lint_rust(rel, &src, cfg));
            let collected = items::collect_items(&src);
            sources.push(SourceFile {
                path: rel.clone(),
                src,
                items: collected,
            });
        }
    }
    findings.extend(analyses::run(&sources, cfg)?);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(findings)
}

/// Count findings at `deny` severity — the run fails iff this is nonzero.
pub fn deny_count(findings: &[Finding]) -> usize {
    findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count()
}

/// Recursively collect lintable files as `/`-separated paths relative to
/// `root`, pruning the skip list, `target/`, and dot-directories.
fn collect_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if name == "target" || Config::path_in(&rel, &cfg.skip) {
                continue;
            }
            collect_files(root, &path, cfg, out)?;
        } else if (name.ends_with(".rs") || name == "Cargo.toml")
            && !Config::path_in(&rel, &cfg.skip)
        {
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` holding a
/// `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_by_file_name() {
        let cfg = Config::parse("[paths]\npanic-free = [\"crates\"]\n").expect("cfg");
        let rs = lint_path_content(
            "crates/a/src/f.rs",
            "fn f(o: Option<u8>) { o.unwrap(); }\n",
            &cfg,
        );
        assert_eq!(rs.len(), 1);
        let toml = lint_path_content("crates/a/Cargo.toml", "[dependencies]\nx = \"1\"\n", &cfg);
        assert_eq!(toml.len(), 1);
        assert!(lint_path_content("README.md", "anything", &cfg).is_empty());
    }

    #[test]
    fn deny_counting_respects_severity() {
        let cfg = Config::parse(
            "[rules.panic-path]\nseverity = \"warn\"\n[paths]\npanic-free = [\"crates\"]\n",
        )
        .expect("cfg");
        let fs = lint_path_content(
            "crates/a/src/f.rs",
            "fn f(o: Option<u8>) { o.unwrap(); }\n",
            &cfg,
        );
        assert_eq!(fs.len(), 1);
        assert_eq!(deny_count(&fs), 0);
    }
}
