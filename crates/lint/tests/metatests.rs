//! Meta-tests: fault injection through `lint_workspace_with_overrides`.
//!
//! Each test replaces one real workspace file *in memory* with a version
//! carrying a defect only the interprocedural analyses can see — a panic
//! two calls away from a pipeline entry point, a wall-clock read two
//! calls behind a renderer — and asserts the lint run under the real
//! checked-in `lint.toml` reports it with the full call chain. This is
//! the regression harness for the analyses themselves: if conservative
//! call resolution ever loses an edge, these chains disappear.

use dynamips_lint::engine::{find_root, lint_workspace_with_overrides};
use dynamips_lint::Config;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn workspace_config(root: &std::path::Path) -> Config {
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    Config::parse(&text).expect("parse lint.toml")
}

#[test]
fn injected_transitive_panic_is_caught_with_its_chain() {
    let root = workspace_root();
    let cfg = workspace_config(&root);

    // Inject a panic two hops from the `dynamips` pipeline entry: main
    // calls injected_entry_hop calls injected_mid_hop, which unwraps an
    // input-dependent Option. No single file-local scan of the unpatched
    // entry would connect main to the panic site.
    let entry = "crates/experiments/src/main.rs";
    let original = std::fs::read_to_string(root.join(entry)).expect("read pipeline entry");
    assert_eq!(
        original.matches("fn main() {").count(),
        1,
        "injection point must be unambiguous"
    );
    let mut patched = original.replace("fn main() {", "fn main() {\n    injected_entry_hop();");
    patched.push_str(concat!(
        "\nfn injected_entry_hop() {\n",
        "    injected_mid_hop(std::env::args().count());\n",
        "}\n",
        "\nfn injected_mid_hop(n: usize) {\n",
        "    let v: Vec<usize> = Vec::new();\n",
        "    let _ = *v.get(n).unwrap();\n",
        "}\n",
    ));

    let findings = lint_workspace_with_overrides(&root, &cfg, &[(entry.to_string(), patched)])
        .expect("lint run");
    assert!(
        findings.iter().any(|f| {
            f.rule == "panic-reach"
                && f.message
                    .contains("main → injected_entry_hop → injected_mid_hop")
        }),
        "panic-reachability missed the injected transitive panic; panic-reach findings: {:#?}",
        findings
            .iter()
            .filter(|f| f.rule == "panic-reach")
            .collect::<Vec<_>>()
    );
}

#[test]
fn injected_wall_clock_two_calls_from_a_renderer_is_tainted() {
    let root = workspace_root();
    let cfg = workspace_config(&root);

    // crates/core/src/report.rs is a declared determinism sink. Append a
    // renderer whose helper's helper reads the wall clock: the taint must
    // travel both call edges back to the pub entry point.
    let sink = "crates/core/src/report.rs";
    let mut patched = std::fs::read_to_string(root.join(sink)).expect("read sink file");
    patched.push_str(concat!(
        "\npub fn injected_render() -> String {\n",
        "    injected_fmt()\n",
        "}\n",
        "\nfn injected_fmt() -> String {\n",
        "    injected_stamp()\n",
        "}\n",
        "\nfn injected_stamp() -> String {\n",
        "    let t = std::time::Instant::now();\n",
        "    format!(\"{:?}\", t.elapsed())\n",
        "}\n",
    ));

    let findings = lint_workspace_with_overrides(&root, &cfg, &[(sink.to_string(), patched)])
        .expect("lint run");
    assert!(
        findings.iter().any(|f| {
            f.rule == "determinism-taint"
                && f.message
                    .contains("injected_render → injected_fmt → injected_stamp")
        }),
        "determinism taint missed the injected wall-clock read; taint findings: {:#?}",
        findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .collect::<Vec<_>>()
    );
}

#[test]
fn unpatched_workspace_has_no_injected_findings() {
    // Sanity check for the two tests above: the chains they assert on
    // must come from the injection, not from the tree.
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let findings = lint_workspace_with_overrides(&root, &cfg, &[]).expect("lint run");
    assert!(findings.iter().all(|f| !f.message.contains("injected_")));
}
