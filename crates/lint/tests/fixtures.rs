//! Integration tests over the fixture corpus in `tests/fixtures/` — one
//! miniature workspace whose files each trip (or deliberately dodge) one
//! rule — plus the meta-test that the real workspace is lint-clean under
//! the checked-in `lint.toml`.

use dynamips_lint::{
    deny_count, lint_path_content, lint_workspace, parse_json, to_json, Baseline, Config, Finding,
    ALL_RULES,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint_fixtures() -> Vec<Finding> {
    let root = fixture_root();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    let cfg = Config::parse(&cfg_text).expect("fixture config parses");
    let findings = lint_workspace(&root, &cfg).expect("fixture corpus lints");
    // The corpus baseline holds exactly one stale entry, so applying the
    // ratchet exercises the stale-baseline rule without suppressing any of
    // the genuine fixture findings.
    let base_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("fixture baseline");
    let applied = Baseline::parse(&base_text)
        .expect("fixture baseline parses")
        .apply(findings);
    assert_eq!(applied.suppressed, 0, "the fixture baseline is all stale");
    applied.kept
}

/// Every rule fires on the corpus, with exactly the counts the fixture
/// headers promise.
#[test]
fn fixture_corpus_trips_every_rule() {
    let findings = lint_fixtures();
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &findings {
        *by_rule.entry(f.rule.as_str()).or_default() += 1;
    }
    let expected: &[(&str, usize)] = &[
        ("bare-allow", 2),
        ("crate-root", 2),
        ("dead-pub", 1),
        ("determinism-taint", 1),
        ("exit-code", 2),
        ("hash-iter", 2),
        ("offline-deps", 2),
        ("panic-path", 4),
        ("panic-reach", 1),
        ("print-in-lib", 1),
        ("slice-index", 2),
        ("stale-baseline", 1),
        ("thread-spawn", 3),
        ("unseeded-rng", 2),
        ("wall-clock", 3),
    ];
    let got: Vec<(&str, usize)> = by_rule.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, expected, "full findings: {findings:#?}");
    for rule in ALL_RULES {
        assert!(
            by_rule.contains_key(rule.id),
            "rule {:?} never fired on the corpus",
            rule.id
        );
    }
    assert_eq!(
        deny_count(&findings),
        findings.len(),
        "all defaults are deny"
    );
}

/// The interprocedural findings report the shortest call chain from the
/// root to the offending site — the acceptance scenario for the
/// call-graph analyses.
#[test]
fn fixture_chains_are_reported() {
    let findings = lint_fixtures();
    let reach: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "panic-reach")
        .collect();
    assert_eq!(reach.len(), 1, "{reach:#?}");
    assert_eq!(reach[0].path, "src/chain.rs");
    assert!(
        reach[0]
            .message
            .contains("main → chain_entry → chain_helper"),
        "chain missing: {}",
        reach[0].message
    );
    let taint: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "determinism-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{taint:#?}");
    assert_eq!(taint[0].path, "src/taint.rs");
    assert!(
        taint[0]
            .message
            .contains("render_table → helper_mid → helper_src"),
        "chain missing: {}",
        taint[0].message
    );
    let dead: Vec<&Finding> = findings.iter().filter(|f| f.rule == "dead-pub").collect();
    assert_eq!(dead.len(), 1, "{dead:#?}");
    assert!(
        dead[0].message.contains("orphan_helper"),
        "{}",
        dead[0].message
    );
}

/// The clean fixtures — perf exemption, justified pragmas, look-alike
/// tokens in strings/comments/tests — produce no findings at all.
#[test]
fn clean_fixtures_stay_clean() {
    let findings = lint_fixtures();
    for clean in ["src/perf.rs", "src/suppressed.rs", "src/tricky.rs"] {
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.path == clean).collect();
        assert!(hits.is_empty(), "{clean} should be clean: {hits:#?}");
    }
}

/// The meta-test: the workspace itself, under the checked-in `lint.toml`
/// and `lint-baseline.json` ratchet, has zero deny-severity findings —
/// exactly what CI enforces. Any regression — a new unwrap in the
/// pipeline, a wall-clock read in a renderer, a registry dependency, a
/// finding beyond the baselined debt — fails this test.
#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    let outcome = dynamips_lint::run(&root, &cfg_text, dynamips_lint::Format::Text, true)
        .expect("workspace lints");
    assert_eq!(
        outcome.denies, 0,
        "workspace has deny findings beyond the baseline:\n{}",
        outcome.report
    );
    // The baselined debt is the checked-in panic-reach backlog; it may
    // shrink (update the baseline) but the ratchet forbids growth.
    assert!(
        outcome.baselined <= 10,
        "baseline grew: {} suppressed findings",
        outcome.baselined
    );
}

/// A wall-clock read injected into an artifact-rendering module is caught
/// under the real workspace configuration — the acceptance scenario for
/// the byte-identical-artifacts guarantee.
#[test]
fn injected_wall_clock_in_render_module_is_caught() {
    let cfg_text =
        std::fs::read_to_string(workspace_root().join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&cfg_text).expect("workspace config parses");
    let injected = "pub fn table1() -> String {\n    let _t = std::time::Instant::now();\n    String::new()\n}\n";
    let findings = lint_path_content("crates/core/src/report.rs", injected, &cfg);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "wall-clock");
    assert_eq!(findings[0].line, 2);
    // The same content in the timing layer is exempt.
    assert!(lint_path_content("crates/core/src/perf.rs", injected, &cfg).is_empty());
}

/// Exempting `crates/serve` from the wall-clock ban must not loosen the
/// rule anywhere else: an `Instant::now()` injected into a non-serve
/// crate is still caught under the real workspace configuration, while
/// the identical content under `crates/serve/src` is exempt.
#[test]
fn serve_perf_exemption_does_not_leak_to_other_crates() {
    let cfg_text =
        std::fs::read_to_string(workspace_root().join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&cfg_text).expect("workspace config parses");
    let injected =
        "pub fn sampled() -> u128 {\n    std::time::Instant::now().elapsed().as_millis()\n}\n";
    for non_serve in [
        "crates/atlas/src/lease.rs",
        "crates/cdn/src/dataset.rs",
        "crates/core/src/stats.rs",
    ] {
        let findings = lint_path_content(non_serve, injected, &cfg);
        assert_eq!(findings.len(), 1, "{non_serve}: {findings:#?}");
        assert_eq!(findings[0].rule, "wall-clock", "{non_serve}");
    }
    for serve_file in [
        "crates/serve/src/server.rs",
        "crates/serve/src/reactor.rs",
        "crates/serve/src/poll.rs",
    ] {
        assert!(
            lint_path_content(serve_file, injected, &cfg).is_empty(),
            "{serve_file} is in the timing-exempt serving layer"
        );
    }
}

/// A thread spawn outside the declared concurrency layer is caught under
/// the real workspace configuration; the same content inside the serving
/// layer (or the engine) is allowed.
#[test]
fn injected_thread_spawn_outside_concurrency_layer_is_caught() {
    let cfg_text =
        std::fs::read_to_string(workspace_root().join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&cfg_text).expect("workspace config parses");
    let injected = "pub fn fan_out() {\n    let _ = std::thread::spawn(|| ()).join();\n}\n";
    let findings = lint_path_content("crates/core/src/stats.rs", injected, &cfg);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "thread-spawn");
    assert_eq!(findings[0].line, 2);
    for allowed in [
        "crates/serve/src/server.rs",
        "crates/serve/src/reactor.rs",
        "crates/serve/src/poll.rs",
        "crates/experiments/src/engine.rs",
    ] {
        assert!(
            lint_path_content(allowed, injected, &cfg).is_empty(),
            "{allowed} is in the declared concurrency layer"
        );
    }
}

/// The JSON report of the whole corpus round-trips losslessly.
#[test]
fn fixture_report_round_trips_through_json() {
    let findings = lint_fixtures();
    let json = to_json(&findings);
    assert!(json.contains("\"schema\": \"dynamips-lint-v1\""));
    let back = parse_json(&json).expect("report parses");
    assert_eq!(back, findings);
}
