//! Integration tests over the fixture corpus in `tests/fixtures/` — one
//! miniature workspace whose files each trip (or deliberately dodge) one
//! rule — plus the meta-test that the real workspace is lint-clean under
//! the checked-in `lint.toml`.

use dynamips_lint::{
    deny_count, lint_path_content, lint_workspace, parse_json, render_text, to_json, Config,
    Finding, ALL_RULES,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint_fixtures() -> Vec<Finding> {
    let root = fixture_root();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    let cfg = Config::parse(&cfg_text).expect("fixture config parses");
    lint_workspace(&root, &cfg).expect("fixture corpus lints")
}

/// Every rule fires on the corpus, with exactly the counts the fixture
/// headers promise.
#[test]
fn fixture_corpus_trips_every_rule() {
    let findings = lint_fixtures();
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &findings {
        *by_rule.entry(f.rule.as_str()).or_default() += 1;
    }
    let expected: &[(&str, usize)] = &[
        ("bare-allow", 2),
        ("crate-root", 2),
        ("exit-code", 2),
        ("hash-iter", 2),
        ("offline-deps", 2),
        ("panic-path", 4),
        ("print-in-lib", 1),
        ("slice-index", 2),
        ("unseeded-rng", 2),
        ("wall-clock", 2),
    ];
    let got: Vec<(&str, usize)> = by_rule.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, expected, "full findings: {findings:#?}");
    for rule in ALL_RULES {
        assert!(
            by_rule.contains_key(rule.id),
            "rule {:?} never fired on the corpus",
            rule.id
        );
    }
    assert_eq!(
        deny_count(&findings),
        findings.len(),
        "all defaults are deny"
    );
}

/// The clean fixtures — perf exemption, justified pragmas, look-alike
/// tokens in strings/comments/tests — produce no findings at all.
#[test]
fn clean_fixtures_stay_clean() {
    let findings = lint_fixtures();
    for clean in ["src/perf.rs", "src/suppressed.rs", "src/tricky.rs"] {
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.path == clean).collect();
        assert!(hits.is_empty(), "{clean} should be clean: {hits:#?}");
    }
}

/// The meta-test: the workspace itself, under the checked-in `lint.toml`,
/// has zero deny-severity findings. Any regression — a new unwrap in the
/// pipeline, a wall-clock read in a renderer, a registry dependency —
/// fails this test.
#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&cfg_text).expect("workspace config parses");
    let findings = lint_workspace(&root, &cfg).expect("workspace lints");
    assert_eq!(
        deny_count(&findings),
        0,
        "workspace has deny findings:\n{}",
        render_text(&findings)
    );
}

/// A wall-clock read injected into an artifact-rendering module is caught
/// under the real workspace configuration — the acceptance scenario for
/// the byte-identical-artifacts guarantee.
#[test]
fn injected_wall_clock_in_render_module_is_caught() {
    let cfg_text =
        std::fs::read_to_string(workspace_root().join("lint.toml")).expect("workspace lint.toml");
    let cfg = Config::parse(&cfg_text).expect("workspace config parses");
    let injected = "pub fn table1() -> String {\n    let _t = std::time::Instant::now();\n    String::new()\n}\n";
    let findings = lint_path_content("crates/core/src/report.rs", injected, &cfg);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "wall-clock");
    assert_eq!(findings[0].line, 2);
    // The same content in the timing layer is exempt.
    assert!(lint_path_content("crates/core/src/perf.rs", injected, &cfg).is_empty());
}

/// The JSON report of the whole corpus round-trips losslessly.
#[test]
fn fixture_report_round_trips_through_json() {
    let findings = lint_fixtures();
    let json = to_json(&findings);
    assert!(json.contains("\"schema\": \"dynamips-lint-v1\""));
    let back = parse_json(&json).expect("report parses");
    assert_eq!(back, findings);
}
