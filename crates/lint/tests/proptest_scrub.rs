//! Property tests: the scrubber is total. Arbitrary byte corruptions of
//! real workspace sources — invalid UTF-8, truncated string literals,
//! unterminated block comments — must never panic `scrub`, and the
//! scrubbed code view must stay line-aligned with its input, because
//! every finding's line number is derived from that alignment.

use dynamips_lint::engine::find_root;
use dynamips_lint::scrub::scrub;
use proptest::prelude::*;
use std::path::Path;

/// Real sources spanning the syntax the scrubber has to survive: raw
/// strings and macros (scrub.rs), doc examples (dhcp.rs), heavy string
/// formatting (report.rs), and a `fn main` CLI (main.rs).
const SOURCES: &[&str] = &[
    "crates/lint/src/scrub.rs",
    "crates/netsim/src/dhcp.rs",
    "crates/core/src/report.rs",
    "crates/experiments/src/main.rs",
];

fn read_source(idx: usize) -> String {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let rel = SOURCES[idx % SOURCES.len()];
    std::fs::read_to_string(root.join(rel)).expect("read workspace source")
}

proptest! {
    #[test]
    fn mutated_workspace_sources_never_panic_scrub(
        idx in 0..SOURCES.len(),
        mutations in proptest::collection::vec(
            (any::<usize>(), any::<u8>()),
            0..64,
        ),
    ) {
        let mut bytes = read_source(idx).into_bytes();
        for (pos, byte) in &mutations {
            if bytes.is_empty() {
                break;
            }
            let i = pos % bytes.len();
            bytes[i] = *byte;
        }
        // Corruption may produce invalid UTF-8; the engine reads files as
        // strings, so model the same lossy decoding here.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let scrubbed = scrub(&text);
        prop_assert_eq!(
            scrubbed.code.lines().count(),
            text.lines().count(),
            "scrub desynced the line map"
        );
    }

    #[test]
    fn scrub_is_total_on_arbitrary_text(text in "[ -~\n\t\"'/*#\\\\]{0,400}") {
        let scrubbed = scrub(&text);
        prop_assert_eq!(scrubbed.code.lines().count(), text.lines().count());
    }
}
