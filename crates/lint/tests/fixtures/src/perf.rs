//! Fixture: the declared timing layer may read the wall clock.
//! Expected: clean.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
