//! Fixture: the declared timing layer may read the wall clock, and the
//! declared concurrency layer may spawn threads (here the same file
//! plays both roles). Expected: clean.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn timed_hop() -> std::time::Duration {
    let t = std::time::Instant::now();
    let _ = std::thread::spawn(|| ()).join();
    t.elapsed()
}
