//! Fixture: thread spawns outside the declared concurrency layer.
//! Expected: thread-spawn x3.

pub fn fan_out() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}

pub fn scoped() -> i32 {
    std::thread::scope(|s| s.spawn(|| 2).join().unwrap_or(0))
}
