//! Fixture: determinism violations outside the timing layer.
//! Expected: wall-clock x2, unseeded-rng x2.

pub fn now_ms() -> u128 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_millis()
}

pub fn roll() -> u8 {
    let mut _r = rand::thread_rng();
    let _ = rand::rngs::SmallRng::from_entropy();
    0
}
