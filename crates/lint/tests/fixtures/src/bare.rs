//! Fixture: pragma misuse. A pragma without a justification and one
//! naming an unknown rule are themselves findings, and neither suppresses
//! anything. Expected: bare-allow x2, panic-path x1.

pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-path)
    o.unwrap()
}

// lint:allow(not-a-rule): the rule id does not exist
pub fn g() {}
