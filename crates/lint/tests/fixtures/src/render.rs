//! Fixture: unordered containers in an artifact-render path, where
//! iteration order would leak into regenerated artifacts.
//! Expected: hash-iter x2.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn render() -> String {
    String::new()
}
