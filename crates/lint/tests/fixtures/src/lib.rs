//! Fixture: a crate root missing both hygiene attributes, plus a library
//! that prints. Expected: crate-root x2 (line 1), print-in-lib x1.

pub fn greet() -> String {
    println!("side effect in a library");
    "hi".to_string()
}
