//! Fixture: look-alikes that must NOT fire (false-positive guards).
//! Expected: clean.

/// Banned tokens inside strings are data, not code.
pub fn describe() -> &'static str {
    "call .unwrap() or panic! at Instant::now over a HashMap"
}

/// Raw-string bodies are not code either.
pub fn raw() -> &'static str {
    r#"thread_rng() and fields[0] and std::process::exit(1)"#
}

/// `unwrap_or` must not match the `.unwrap(` needle, and `'a'` here is a
/// char literal, not a lifetime that would derail the scrubber.
pub fn lookalikes(o: Option<char>) -> char {
    o.unwrap_or('a')
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_index() {
        let v = [1, 2, 3];
        assert_eq!(Some(v[0]).unwrap(), 1);
    }
}
