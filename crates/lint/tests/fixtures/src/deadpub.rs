//! Fixture: a `pub` item nothing outside this (single-crate) corpus ever
//! references. Expected: dead-pub x1.

pub fn orphan_helper() -> u32 {
    41 + 1
}
