//! Fixture: a transitive panic. This file is deliberately *outside* the
//! panic-free path list, so the per-line panic-path rule stays silent —
//! only the call-graph analysis can see that `main` reaches the unwrap
//! two hops down (main → chain_entry → chain_helper).
//! Expected: panic-reach x1.

pub fn chain_entry() {
    chain_helper(std::env::args().next());
}

fn chain_helper(o: Option<String>) {
    let _ = o.unwrap();
}
