//! Fixture: the binary's exit-code module. Exiting through named EXIT_*
//! constants is the contract; a bare literal is flagged even here, and
//! binaries may print. Expected: exit-code x1 (the literal).

const EXIT_OK: i32 = 0;

fn main() {
    println!("binaries may print");
    chain_entry();
    if std::env::args().count() > 1 {
        std::process::exit(1);
    }
    std::process::exit(EXIT_OK);
}
