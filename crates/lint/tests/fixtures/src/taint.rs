//! Fixture: transitive nondeterminism. `render_table` is declared an
//! artifact sink in lint.toml; the wall-clock read two calls down taints
//! it (render_table → helper_mid → helper_src).
//! Expected: wall-clock x1 (the per-line rule at the site itself) plus
//! determinism-taint x1 (the call-graph analysis at the same site).

pub fn render_table() -> String {
    helper_mid()
}

fn helper_mid() -> String {
    helper_src()
}

fn helper_src() -> String {
    let t = std::time::Instant::now();
    format!("{:?}", t.elapsed())
}
