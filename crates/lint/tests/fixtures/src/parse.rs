//! Fixture: ingest-parser violations — panics and direct indexing on
//! data-derived slices. Expected: panic-path x3, slice-index x2.

pub fn parse(fields: &[&str]) -> u32 {
    let first = fields[0];
    let n: u32 = first.parse().unwrap();
    if n > 10 {
        panic!("too big");
    }
    let _ = fields.get(1).copied().expect("second field");
    let _ = fields[1];
    n
}
