//! Fixture: process::exit outside the binary's exit-code module.
//! Expected: exit-code x1.

pub fn bail() {
    std::process::exit(2);
}
