//! Fixture: justified pragmas suppress findings, both standalone (covers
//! the next code line) and trailing (covers its own line).
//! Expected: clean.

pub fn locked(m: &std::sync::Mutex<u32>) -> u32 {
    // lint:allow(panic-path): a poisoned lock is unrecoverable here
    *m.lock().unwrap()
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now() // lint:allow(wall-clock): exercising trailing pragmas
}
