//! JSON reporter round-trip tests and the golden file pinning the
//! `dynamips-lint-v1` document layout.
//!
//! The build is offline (no serde), so the writer and parser in
//! `report.rs` are hand-rolled; these tests pin the escaping rules on
//! the paths CI actually produces — spaces, quotes, backslashes,
//! non-ASCII — and freeze the byte-exact layout external tooling parses.

use dynamips_lint::{parse_json, to_json, Finding, Severity, LINT_SCHEMA};

fn finding(path: &str, line: usize, rule: &str, severity: Severity, message: &str) -> Finding {
    Finding {
        path: path.into(),
        line,
        rule: rule.into(),
        severity,
        message: message.into(),
    }
}

#[test]
fn roundtrip_survives_awkward_paths_and_messages() {
    let findings = vec![
        finding(
            "crates/a b/src/l ib.rs",
            3,
            "wall-clock",
            Severity::Deny,
            "a path with spaces",
        ),
        finding(
            "crates/x/src/\"quoted\".rs",
            1,
            "panic-path",
            Severity::Warn,
            "she said \"don't\"",
        ),
        finding(
            "crates/ünïcødé/src/lib.rs",
            42,
            "dead-pub",
            Severity::Deny,
            "non-ASCII survives — naïve café",
        ),
        finding(
            "crates\\win\\style.rs",
            7,
            "hash-iter",
            Severity::Warn,
            "back\\slash, a\nnewline, and a\ttab",
        ),
        finding(
            "crates/ctrl.rs",
            9,
            "unseeded-rng",
            Severity::Deny,
            "a control\u{1}character",
        ),
    ];
    let json = to_json(&findings);
    let parsed = parse_json(&json).expect("reparse our own document");
    assert_eq!(parsed, findings);
}

#[test]
fn roundtrip_of_the_empty_report() {
    let json = to_json(&[]);
    assert!(json.contains(LINT_SCHEMA));
    assert_eq!(parse_json(&json).expect("reparse"), Vec::new());
}

#[test]
fn roundtrip_is_a_fixed_point() {
    let findings = vec![finding(
        "crates/core/src/report.rs",
        5,
        "wall-clock",
        Severity::Deny,
        "quote \" backslash \\ done",
    )];
    let once = to_json(&findings);
    let twice = to_json(&parse_json(&once).expect("reparse"));
    assert_eq!(once, twice);
}

/// The golden file freezes the `dynamips-lint-v1` layout byte for byte.
/// If this fails, the schema changed: bump [`LINT_SCHEMA`] and regenerate
/// the golden file rather than silently breaking report consumers.
#[test]
fn golden_file_pins_the_v1_document() {
    let findings = vec![
        finding(
            "crates/core/src/report.rs",
            12,
            "wall-clock",
            Severity::Deny,
            "Instant::now() in an artifact path",
        ),
        finding(
            "crates/atlas/src/records.rs",
            8,
            "hash-iter",
            Severity::Warn,
            "iteration over a HashMap in a rendering path",
        ),
    ];
    let json = to_json(&findings);
    let golden = include_str!("golden/lint-report-v1.json");
    assert_eq!(
        json, golden,
        "dynamips-lint-v1 layout changed; bump LINT_SCHEMA and regenerate tests/golden/lint-report-v1.json"
    );
    assert!(json.contains(&format!("\"schema\": \"{LINT_SCHEMA}\"")));
}
