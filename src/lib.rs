//! # DynamIPs — address-assignment dynamics, reproduced
//!
//! A full Rust reproduction of *"DynamIPs: Analyzing address assignment
//! practices in IPv4 and IPv6"* (Padmanabhan, Rula, Richter, Strowes,
//! Dainotti — CoNEXT 2020): the analysis pipeline the paper contributes,
//! plus simulations of every substrate it depends on, because the paper's
//! two datasets (RIPE Atlas "IP echo" and a CDN RUM feed) are proprietary.
//!
//! The crates compose bottom-up:
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | primitives | [`netaddr`] | prefixes, CPL, trailing-zero math, tries, pools, IIDs |
//! | routing | [`routing`] | BGP tables, pfx2as lookup, RIR delegations |
//! | mechanisms | [`netsim`] | DHCP/RADIUS/DHCPv6-PD/CGNAT simulation, ISP profiles |
//! | observation | [`atlas`], [`cdn`] | IP-echo probe series, RUM association tuples |
//! | analysis | [`core`] | sanitization, durations, interplay, spatial structure |
//! | harness | [`experiments`] | regenerates every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use dynamips::netsim::profiles::{dtag, Era};
//! use dynamips::netsim::time::{SimTime, Window};
//! use dynamips::netsim::World;
//!
//! // Simulate 50 Deutsche-Telekom-like subscribers for 90 days.
//! let mut world = World::new(42);
//! world.add_isp(dtag(50, Era::Atlas));
//! let window = Window::new(SimTime(0), SimTime(90 * 24));
//! let result = world
//!     .run_one(dynamips::routing::Asn(3320), window)
//!     .expect("DTAG is in the world");
//!
//! // Ground truth: daily renumbering produces frequent /64 changes.
//! let changes: usize = result.timelines.iter().map(|t| t.v6_changes()).sum();
//! assert!(changes > 0);
//! ```
//!
//! See `examples/` for end-to-end scenarios (blocklist sizing, hitlist
//! scoping, anonymization auditing) and `crates/experiments` for the
//! paper-artifact harness (`cargo run --release -p dynamips-experiments --
//! all`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use dynamips_atlas as atlas;
pub use dynamips_cdn as cdn;
pub use dynamips_core as core;
pub use dynamips_experiments as experiments;
pub use dynamips_netaddr as netaddr;
pub use dynamips_netsim as netsim;
pub use dynamips_routing as routing;
