//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a simple wall-clock timer: each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a short measurement window, and the mean ns/iter is printed.
//! There is no statistical analysis, plotting, or HTML report.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    measured: Option<MeasuredRun>,
}

struct MeasuredRun {
    total: Duration,
    iters: u64,
}

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);

impl Bencher {
    /// Time `routine`, running it repeatedly until the measurement window
    /// is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup call, which also sizes the batch.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            iters += per_batch;
            if start.elapsed() >= MEASURE_WINDOW {
                break;
            }
        }
        self.measured = Some(MeasuredRun {
            total: start.elapsed(),
            iters,
        });
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Apply CLI-style filtering (substring match on the benchmark id).
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, None, id, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count (no-op; provided for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let group = self.name.clone();
        run_bench(self.criterion, Some(&group), id, self.throughput, f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if !criterion.matches(&full) {
        return;
    }
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some(m) if m.iters > 0 => {
            let ns = m.total.as_nanos() as f64 / m.iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:.1} Melem/s", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => format!("  {:.1} MiB/s", n as f64 / ns * 953.7),
                None => String::new(),
            };
            println!("{full:<50} {ns:>12.0} ns/iter ({} iters){rate}", m.iters);
        }
        _ => println!("{full:<50}  (no measurement)"),
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| std::hint::black_box(2 * 2)));
        g.finish();
    }
}
