//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`, range
//! and tuple strategies, `&str`-as-regex string strategies (a small regex
//! subset: char classes, escapes, `{n,m}`/`*`/`+`/`?` repetition),
//! [`collection::vec`], [`prop_oneof!`], [`Just`], `prop_assert*!` and
//! `prop_assume!` — on top of a seeded RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   assertion message but does not minimize them;
//! * cases are generated from a seed derived from the test function's name,
//!   so runs are deterministic across processes (the real crate persists
//!   regressions in `proptest-regressions/` instead; those files are
//!   ignored here).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::*;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test name, then case
    /// index mixed in by the caller advancing the stream.
    pub fn rng_for(test_name: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Strategy combinators.
pub mod strategy {
    use super::*;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking; a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f`, retrying a bounded number of
        /// times (the real crate tracks a global rejection quota).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Box the strategy, erasing its type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe strategy alias used by [`prop_oneof!`].
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    /// Object-safe mirror of [`Strategy`].
    pub trait DynStrategy<V> {
        /// Generate one value.
        fn dyn_generate(&self, rng: &mut SmallRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            self.as_ref().dyn_generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?}: too many rejections", self.whence);
        }
    }

    /// Uniform choice among boxed strategies; built by [`prop_oneof!`].
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Choose uniformly among `options` each case.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].dyn_generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, f32, f64);

    /// A `&str` is a strategy generating `String`s matching it as a regex
    /// (the subset [`crate::string_regex`] supports).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            crate::string_regex::generate_matching(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
    }
}

/// Generation of strings matching a small regex subset, backing the
/// `&str`-as-strategy impl. Supported: literal chars, `.`, escapes
/// (`\n`, `\t`, `\r`, `\d`, `\w`, `\s`, and escaped metachars), character
/// classes with ranges and negation (`[a-z]`, `[^0-9]`), and the
/// repetition suffixes `{n}`, `{lo,hi}`, `{lo,}`, `*`, `+`, `?`
/// (unbounded repetition is capped at 8 extra items). Alternation and
/// groups are not supported and panic at test time.
pub mod string_regex {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::iter::Peekable;
    use std::str::Chars;

    /// Generate one string matching `pattern`.
    pub(crate) fn generate_matching(pattern: &str, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for (set, lo, hi) in compile(pattern) {
            let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..n {
                out.push(set[rng.gen_range(0..set.len())]);
            }
        }
        out
    }

    /// One `(alphabet, min repeats, max repeats)` per regex atom.
    fn compile(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => parse_class(pattern, &mut chars),
                '\\' => escape_set(expect(pattern, &mut chars)),
                '.' => universe().collect(),
                '(' | ')' | '|' => {
                    panic!("unsupported regex construct {c:?} in {pattern:?}")
                }
                lit => vec![lit],
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_count(pattern, &mut chars)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 9)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            atoms.push((set, lo, hi));
        }
        atoms
    }

    /// The alphabet `.` and negated classes draw from: printable ASCII
    /// plus newline and tab.
    fn universe() -> impl Iterator<Item = char> {
        (' '..='~').chain(['\n', '\t'])
    }

    fn expect(pattern: &str, chars: &mut Peekable<Chars<'_>>) -> char {
        chars
            .next()
            .unwrap_or_else(|| panic!("truncated regex {pattern:?}"))
    }

    fn escape_set(c: char) -> Vec<char> {
        match c {
            'n' => vec!['\n'],
            't' => vec!['\t'],
            'r' => vec!['\r'],
            'd' => ('0'..='9').collect(),
            'w' => ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(['_'])
                .collect(),
            's' => vec![' ', '\t', '\n'],
            other => vec![other],
        }
    }

    fn parse_class(pattern: &str, chars: &mut Peekable<Chars<'_>>) -> Vec<char> {
        let negated = chars.peek() == Some(&'^');
        if negated {
            chars.next();
        }
        let mut set: Vec<char> = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match expect(pattern, chars) {
                ']' => break,
                '\\' => {
                    let e = escape_set(expect(pattern, chars));
                    prev = if e.len() == 1 { Some(e[0]) } else { None };
                    set.extend(e);
                }
                '-' if prev.is_some() && chars.peek() != Some(&']') => {
                    let hi = match expect(pattern, chars) {
                        '\\' => escape_set(expect(pattern, chars))[0],
                        other => other,
                    };
                    let lo = prev.take().expect("range start");
                    assert!(lo <= hi, "inverted class range in {pattern:?}");
                    // `lo` itself is already in the set.
                    for code in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            set.push(ch);
                        }
                    }
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        if negated {
            let exclude: std::collections::HashSet<char> = set.into_iter().collect();
            universe().filter(|c| !exclude.contains(c)).collect()
        } else {
            set
        }
    }

    fn parse_count(pattern: &str, chars: &mut Peekable<Chars<'_>>) -> (usize, usize) {
        let mut lo = String::new();
        let mut hi = String::new();
        let mut in_hi = false;
        loop {
            match expect(pattern, chars) {
                '}' => break,
                ',' => in_hi = true,
                d => {
                    if in_hi {
                        hi.push(d);
                    } else {
                        lo.push(d);
                    }
                }
            }
        }
        let lo_n: usize = lo
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition count in {pattern:?}"));
        if !in_hi {
            (lo_n, lo_n)
        } else if hi.is_empty() {
            (lo_n, lo_n + 8)
        } else {
            let hi_n = hi
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition count in {pattern:?}"));
            (lo_n, hi_n)
        }
    }
}

/// `Vec` strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use rand::Rng;

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1).max(r.start() + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut SmallRng) -> Self {
                    <$t as rand::Standard>::from_rng(rng)
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, bool, f32, f64);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary_value(rng: &mut SmallRng) -> Self {
            std::array::from_fn(|_| T::arbitrary_value(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary_value(rng: &mut SmallRng) -> Self {
                    ($($name::arbitrary_value(rng),)+)
                }
            }
        )*};
    }
    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// The strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn prop(x in 0u8..10, y: u32) { prop_assert!(x as u32 <= y + 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr) $(#[test] fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rejected: u32 = 0;
                let mut ran: u32 = 0;
                while ran < config.cases {
                    // IIFE so `?` inside the body maps to TestCaseError.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $crate::proptest!(@bind rng, $($params)*);
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(20).max(1000) {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    // Parameter binder: `pat in strategy` or `ident: Type`, comma-separated.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $id:ident : $ty:ty) => {
        let $id: $ty = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident, $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id: $ty = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose among strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_typed_args(x in 1u8..10, y: u32, pair in (0u8..4, 0u8..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            let _ = y;
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u8..5, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..8]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn regex_class_with_ranges_and_escapes(s in "[ -~\n\t]{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }

        #[test]
        fn regex_literals_counts_and_negation(s in "ab\\d{2}[^x]x?") {
            prop_assert!(s.starts_with("ab"));
            let digits: String = s.chars().skip(2).take(2).collect();
            prop_assert!(digits.chars().all(|c| c.is_ascii_digit()), "{s:?}");
            prop_assert_ne!(s.chars().nth(4), Some('x'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(x in 0u64..1000) {
            let _ = x;
        }
    }
}
