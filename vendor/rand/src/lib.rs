//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This crate re-implements exactly the
//! subset of `rand` 0.8.5's API that this workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same
//!   construction `rand` 0.8 uses on 64-bit targets);
//! * [`rngs::mock::StepRng`] for deterministic tests.
//!
//! The implemented paths are **bit-exact** with `rand` 0.8.5 on 64-bit
//! targets: the generator core (xoshiro256++, high-32-bit `next_u32`,
//! SplitMix64 `seed_from_u64`), integer `gen_range` (Lemire
//! widening-multiply rejection with `rand`'s zone computation), half-open
//! float `gen_range` (52-bit `[1, 2)` exponent trick with 1-ulp scale
//! shrink on overflow), `gen_bool` (Bernoulli via `p * 2^64` integer
//! comparison), `Standard` integer/float draws, and
//! `fill_bytes_via_next`-style byte fills. Workspace analyses are seeded,
//! so reproducing the exact streams keeps every downstream statistic
//! identical to what the real crate would produce. Inclusive *float*
//! ranges are best-effort (unused by this workspace).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes. Mirrors `rand_core`'s
    /// `fill_bytes_via_next`: whole 8-byte chunks from `next_u64`, then a
    /// trailing 5–7 byte remainder from `next_u64` or a 1–4 byte remainder
    /// from `next_u32`.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut left = dest;
        while left.len() >= 8 {
            let (l, r) = left.split_at_mut(8);
            left = r;
            l.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let n = left.len();
        if n > 4 {
            left.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        } else if n > 0 {
            left.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // As in `rand` 0.8: low word first, then high word.
        let x = u128::from(rng.next_u64());
        let y = u128::from(rng.next_u64());
        (y << 64) | x
    }
}

impl Standard for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // As in `rand` 0.8: the sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // As in `rand` 0.8: arrays sample element-wise (one u32 draw per
        // byte), unlike `fill`.
        let mut out = [0u8; N];
        for b in &mut out {
            *b = u8::from_rng(rng);
        }
        out
    }
}

/// 64x64 -> 128 widening multiply split into (high, low) words.
fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let p = u128::from(a) * u128::from(b);
    ((p >> 64) as u64, p as u64)
}

/// 128x128 -> 256 widening multiply via 64-bit limbs.
fn wmul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// Integer/float types samplable from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi >= lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// `rand` 0.8.5's `uniform_int_impl!` sample_single/_inclusive: Lemire
/// widening-multiply rejection. `$u_large` is the draw width (u32 for
/// types narrower than 32 bits), and small types (`u8`/`u16`) use the
/// exact modulus zone while wider types use the shift approximation.
macro_rules! impl_sample_uniform_int {
    ($($ty:ty, $unsigned:ty, $u_large:ty, $wmul:path);* $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                Self::sample_inclusive(rng, lo, hi - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                // Wrap-around to 0 means the range covers the whole type.
                let range = hi.wrapping_sub(lo).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    return <$ty as Standard>::from_rng(rng);
                }
                let zone = if (<$unsigned>::MAX as u32) <= (u16::MAX as u32) {
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$u_large as Standard>::from_rng(rng);
                    let (hi_word, lo_word) = $wmul(v, range);
                    if lo_word <= zone {
                        return lo.wrapping_add(hi_word as $ty);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8, u8, u32, wmul_u32;
    u16, u16, u32, wmul_u32;
    u32, u32, u32, wmul_u32;
    u64, u64, u64, wmul_u64;
    usize, usize, u64, wmul_u64;
    u128, u128, u128, wmul_u128;
    i8, u8, u32, wmul_u32;
    i16, u16, u32, wmul_u32;
    i32, u32, u32, wmul_u32;
    i64, u64, u64, wmul_u64;
    i128, u128, u128, wmul_u128
);

/// `rand` 0.8.5's `UniformFloat::sample_single`: a value in `[1, 2)` from
/// the top mantissa-width bits via the exponent trick, mapped by
/// `value0_1 * scale + lo`, with the scale shrunk by 1 ulp and redrawn on
/// the rare rounding overflow.
macro_rules! impl_sample_uniform_float {
    ($($ty:ty, $uty:ty, $next:ident, $discard:expr, $exp_one:expr);* $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let mut scale = hi - lo;
                loop {
                    let value1_2 = <$ty>::from_bits((rng.$next() >> $discard) | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res < hi {
                        return res;
                    }
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                // Best-effort (this path is unused by the workspace): scale
                // so the largest mantissa draw lands exactly on `hi`.
                let max_rand =
                    <$ty>::from_bits((<$uty>::MAX >> $discard) | $exp_one) - 1.0;
                let mut scale = (hi - lo) / max_rand;
                loop {
                    let value1_2 = <$ty>::from_bits((rng.$next() >> $discard) | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res <= hi {
                        return res;
                    }
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(
    f64, u64, next_u64, 12u32, 1023u64 << 52;
    f32, u32, next_u32, 9u32, 127u32 << 23
);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Buffer types fillable by [`Rng::fill`].
pub trait Fill {
    /// Fill `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// Uniform value in `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`. Panics if `p` is outside `[0, 1]`,
    /// like `rand`'s `Bernoulli::new(p).unwrap()`. As in `rand` 0.8,
    /// `p == 1.0` returns `true` without consuming a draw while every
    /// other probability (including 0) consumes one `u64`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        let scale = 2.0 * (1u64 << 63) as f64; // 2^64
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic RNG: xoshiro256++, `rand` 0.8's
    /// `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256 requires a non-zero state; SplitMix64 of any seed
            // yields all-zero with negligible probability, but be exact.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // As in `rand` 0.8's internal xoshiro256++: the upper bits,
            // because the lowest bits have some linear dependencies.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock RNGs for deterministic tests.
    pub mod mock {
        use super::super::RngCore;

        /// Returns `initial`, `initial + increment`, ... as its output
        /// stream, mirroring `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// New counter starting at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                // StepRng truncates (the counter stays visible in the low
                // bits), unlike SmallRng.
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn small_rng_is_deterministic_per_seed() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(1).gen();
        let c: u64 = SmallRng::seed_from_u64(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(3u64..=17);
            assert!((3..=17).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let b = rng.gen_range(0u8..=255);
            let _ = b;
        }
    }

    #[test]
    fn gen_range_u128_and_degenerate_inclusive() {
        let mut rng = SmallRng::seed_from_u64(9);
        let x = rng.gen_range(0u128..1 << 100);
        assert!(x < 1 << 100);
        assert_eq!(rng.gen_range(4u8..=4), 4);
    }

    #[test]
    fn gen_range_full_span_is_a_plain_draw() {
        // Full-type ranges take the `range == 0` path.
        let a = SmallRng::seed_from_u64(3).gen_range(u64::MIN..=u64::MAX);
        let b: u64 = SmallRng::seed_from_u64(3).gen();
        assert_eq!(a, b);
        let c = SmallRng::seed_from_u64(3).gen_range(i8::MIN..=i8::MAX);
        let d = SmallRng::seed_from_u64(3).next_u32() as i8;
        assert_eq!(c, d);
    }

    #[test]
    fn gen_range_is_unbiased_via_rejection() {
        // A range of 3 over u64 would show modulo bias ~2^64/3 if reduced
        // naively; Lemire rejection keeps each bucket within noise.
        let mut rng = SmallRng::seed_from_u64(21);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 400, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "{rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_draw_consumption_matches_rand() {
        // p == 1.0 consumes nothing; p == 0.0 still consumes one u64.
        let mut a = SmallRng::seed_from_u64(5);
        assert!(a.gen_bool(1.0));
        let mut b = SmallRng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut c = SmallRng::seed_from_u64(5);
        assert!(!c.gen_bool(0.0));
        let mut d = SmallRng::seed_from_u64(5);
        d.next_u64();
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
    }

    #[test]
    fn fill_matches_next_u64_le_bytes() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 6];
        rng.fill(&mut buf);
        let mut rng2 = SmallRng::seed_from_u64(17);
        let expect = rng2.next_u64().to_le_bytes();
        assert_eq!(buf, expect[..6]);
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(0, 1);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
    }
}
